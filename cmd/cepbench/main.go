// Command cepbench regenerates the paper's evaluation figures (4–19) as
// tables on the synthetic stock workload.
//
// Usage:
//
//	cepbench -fig 4           # one figure (and its sibling, e.g. 4 prints 5 too)
//	cepbench -fig all         # every figure
//	cepbench -events 50000 -persize 4 -fig 10
//
// Figures map to the paper as follows: 4/5 per-category throughput/memory;
// 6–15 throughput/memory by pattern size per category; 16 cost-model
// validation; 17 large-pattern plan quality and planning time; 18
// throughput/latency trade-off; 19 selection strategies.
//
// Beyond the paper, `cepbench -fig shard` measures the sharded concurrent
// runtime: events/second versus worker count on a bucket-partitioned stock
// stream, against the sequential PartitionedRuntime baseline. `cepbench
// -fig session` measures the multi-query Session front door: events/second
// versus the number of registered queries (1/4/16/64), with a per-query
// match-count cross-check against independent sequential runs. And
// `cepbench -fig mqo` measures the multi-query shared-subplan optimizer:
// 4/16/64 overlapping queries (every fourth a negation pattern sharing the
// positive core) served by a ShareSubplans session versus the default
// per-query-worker session, with a shared-vs-unshared match-count
// cross-check, emitting the rows as JSON for trend tracking. `cepbench
// -fig churn` measures dynamic multi-query optimization: queries register
// and deregister mid-feed on a live sharing session, reporting feed
// throughput, per-operation re-optimization latency and a match-count
// cross-check against private runtimes, as JSON rows. Finally, `cepbench
// -fig drift` measures session-level adaptivity: a mid-stream regime shift
// (symbol rates invert) is processed by a static-shared, an
// adaptive-shared and an oracle-replanned session; the adaptive session
// must detect the drift, re-optimize the affected sharing components
// (dissolving the sharing that stopped winning, forming the newly
// profitable one), recover at least half of the static-to-oracle phase-2
// throughput gap, reproduce the private runtimes' match counts exactly,
// and keep a stationary control run at zero re-optimizations. Phase
// timings use process CPU time and the recovery fraction is the median of
// per-repetition, same-epoch ratios, so the gate holds on a shared noisy
// box (see runDriftScenario).
//
// `cepbench -fig batch` measures the batched intake hot path: the mqo
// workload fed through SubmitBatch at increasing batch sizes (per-event,
// 16, 256) for each query count, with a per-query match-count cross-check
// between all batch sizes. `-batch-json FILE` also writes the rows as a
// JSON file; cmd/benchdiff compares two such files (regression gate) or
// asserts a minimum intra-file speedup (batching gate) in CI.
//
// `cepbench -fig index` measures the ingress filter index
// (SessionConfig.FilterIndex): many selectively-filtered two-symbol
// queries (constant equality and range predicates) served by one session
// with the index on versus off — broadcast fan-out versus two-stage
// discrimination — at 64, 1000 and 10000 registered queries, with a
// per-query match cross-check at the smallest count. Rows carry fig
// "index-on"/"index-off" so cmd/benchdiff's speedup gate can divide the
// 1000-query pair. `-index-json FILE` writes the rows for CI
// (BENCH_index.json is the committed snapshot).
//
// `cepbench -fig telemetry` measures the overhead of the always-on
// telemetry layer (Session.Metrics): the mqo workload fed with telemetry
// at its defaults versus TelemetryConfig{Disabled: true}, best of three
// repetitions each, with an on-vs-off match cross-check and a dump of the
// final unified metrics snapshot. Rows carry fig
// "telemetry-on"/"telemetry-off" so cmd/benchdiff's speedup gate
// (`-min-speedup 0.95 -at fig=telemetry-on -vs fig=telemetry-off`) can
// assert the instrumentation costs at most ~5%. `-telemetry-json FILE`
// writes the rows for CI.
//
// `cepbench -fig trace` measures the overhead of the event-tracing and
// match-provenance layer (SessionConfig.Trace): the mqo workload fed with
// tracing off, with 1-in-64 sampled span traces, and with sampling plus
// per-match provenance, best of three repetitions each, with a match
// cross-check across all three modes and a span walk of one retained
// trace. Rows carry fig "trace-off"/"trace-on"/"trace-prov" so
// cmd/benchdiff's speedup gate (`-min-speedup 0.95 -at fig=trace-on -vs
// fig=trace-off`) can assert the sampled instrumentation costs at most
// ~5%. `-trace-json FILE` writes the rows for CI (BENCH_trace.json is the
// committed snapshot).
//
// `cepbench -fig partition` measures key-partitioned shared evaluation
// (SessionConfig.PartitionWorkers): overlapping fully keyed queries — every
// positive position chained by k-equality, all sharing one hot (A ⋈ B)
// sub-join — served by the same sharing session at 1, 2 and 4 partition
// lanes per component. The quadratic nested-loop combine work divides by
// the lane count even on one core (each lane probes only its hash bucket's
// buffer slice), so the speedup is algorithmic, not parallel. Per-query
// match counts are cross-checked across every lane count. Rows carry fig
// "partition-p1"/"partition-p2"/"partition-p4" so cmd/benchdiff's speedup
// gate (`-min-speedup 1.5 -at fig=partition-p4 -vs fig=partition-p1`) can
// hold the committed ratio. `-partition-json FILE` writes the rows for CI
// (BENCH_partition.json is the committed snapshot).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	cep "repro"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure number (4-19) or 'all'")
		symbols  = flag.Int("symbols", 32, "stock symbols in the universe")
		events   = flag.Int("events", 8000, "events in the generated stream")
		windowMS = flag.Int64("window", 4000, "pattern window in milliseconds")
		perSize  = flag.Int("persize", 2, "patterns per size per category")
		seed     = flag.Int64("seed", 1, "master RNG seed")
		maxSize  = flag.Int("maxsize", 7, "largest pattern size for execution figures")
		dpldCap  = flag.Int("dpld-cap", 18, "largest pattern size planned with DP-LD in Fig 17")
		dpbCap   = flag.Int("dpb-cap", 14, "largest pattern size planned with DP-B in Fig 17")
		shardGen = flag.Int("shard-events", 200000, "events in the sharded-throughput stream (-fig shard)")
		shardPar = flag.Int("shard-partitions", 64, "partitions in the sharded-throughput stream (-fig shard)")
		sessGen  = flag.Int("session-events", 50000, "events in the multi-query stream (-fig session)")
		mqoGen   = flag.Int("mqo-events", 50000, "events in the shared-subplan stream (-fig mqo)")
		mqoQs    = flag.String("mqo-queries", "4,16,64", "overlapping query counts (-fig mqo)")
		churnGen = flag.Int("churn-events", 40000, "events in the churn stream (-fig churn)")
		churnQs  = flag.Int("churn-queries", 8, "queries registered up front (-fig churn)")
		churnOps = flag.Int("churn-ops", 8, "AddQuery/RemoveQuery operations mid-feed (-fig churn)")
		driftGen = flag.Int("drift-events", 200000, "events in the regime-shift stream (-fig drift)")
		driftFam = flag.Int("drift-family", 4, "queries per sharing family (-fig drift, max 4)")
		batchGen = flag.Int("batch-events", 50000, "events in the batched-intake stream (-fig batch)")
		batchQs  = flag.String("batch-queries", "1,16,64", "overlapping query counts (-fig batch)")
		batchSz  = flag.String("batch-sizes", "1,16,256", "SubmitBatch sizes; first is the cross-check reference (-fig batch)")
		batchOut = flag.String("batch-json", "", "also write the batch rows as a JSON file (-fig batch)")
		indexGen = flag.Int("index-events", 40000, "events in the filter-index stream (-fig index)")
		indexQs  = flag.String("index-queries", "64,1000,10000", "registered query counts; matches cross-checked at the first (-fig index)")
		indexOut = flag.String("index-json", "", "also write the index rows as a JSON file (-fig index)")
		telGen   = flag.Int("telemetry-events", 50000, "events in the telemetry-overhead stream (-fig telemetry)")
		telQs    = flag.String("telemetry-queries", "16,64", "overlapping query counts (-fig telemetry)")
		telOut   = flag.String("telemetry-json", "", "also write the telemetry rows as a JSON file (-fig telemetry)")
		traceGen = flag.Int("trace-events", 50000, "events in the tracing-overhead stream (-fig trace)")
		traceQs  = flag.String("trace-queries", "16,64", "overlapping query counts (-fig trace)")
		traceOut = flag.String("trace-json", "", "also write the trace rows as a JSON file (-fig trace)")
		partGen  = flag.Int("partition-events", 60000, "events in the partitioned-evaluation stream (-fig partition)")
		partQs   = flag.String("partition-queries", "16,64", "overlapping keyed query counts (-fig partition)")
		partPs   = flag.String("partition-workers", "1,2,4", "partition lane counts; the first is the cross-check reference (-fig partition)")
		partWin  = flag.Int64("partition-window", 3000, "keyed-query window in milliseconds (-fig partition)")
		partOut  = flag.String("partition-json", "", "also write the partition rows as a JSON file (-fig partition)")
	)
	flag.Parse()

	if *fig == "shard" {
		if err := runShardScenario(*symbols, *shardGen, *shardPar, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: shard scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "session" {
		if err := runSessionScenario(*symbols, *sessGen, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: session scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "mqo" {
		if err := runMQOScenario(*symbols, *mqoGen, *mqoQs, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: mqo scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "churn" {
		if err := runChurnScenario(*symbols, *churnGen, *churnQs, *churnOps, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: churn scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "drift" {
		if err := runDriftScenario(*driftGen, *driftFam, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: drift scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "batch" {
		if err := runBatchScenario(*symbols, *batchGen, *batchQs, *batchSz, event.Time(*windowMS), *seed, *batchOut); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: batch scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "index" {
		if err := runIndexScenario(*indexGen, *indexQs, event.Time(*windowMS), *seed, *indexOut); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: index scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "telemetry" {
		if err := runTelemetryScenario(*symbols, *telGen, *telQs, event.Time(*windowMS), *seed, *telOut); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: telemetry scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "trace" {
		if err := runTraceScenario(*symbols, *traceGen, *traceQs, event.Time(*windowMS), *seed, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: trace scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "partition" {
		if err := runPartitionScenario(*partGen, *partQs, *partPs, event.Time(*partWin), *seed, *partOut); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: partition scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sizes := make([]int, 0, *maxSize-2)
	for s := 3; s <= *maxSize; s++ {
		sizes = append(sizes, s)
	}
	cfg := harness.Config{
		Symbols:     *symbols,
		Events:      *events,
		Window:      event.Time(*windowMS),
		Sizes:       sizes,
		PerSize:     *perSize,
		Seed:        *seed,
		MaxDPLDSize: *dpldCap,
		MaxDPBSize:  *dpbCap,
	}
	runner := harness.NewRunner(cfg)
	fmt.Printf("workload: %d events over %d symbols, window %dms, sizes %v, %d patterns/size\n\n",
		cfg.Events, cfg.Symbols, *windowMS, sizes, cfg.PerSize)

	if *fig == "ext" {
		start := time.Now()
		tables, err := runner.FigExtensions()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: extensions: %v\n", err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(extension tables computed in %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	figures := harness.AllFigures()
	if *fig != "all" {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: invalid -fig %q (4-19, 'all', 'ext', 'shard', 'session', 'mqo', 'churn', 'drift', 'batch', 'index', 'telemetry', 'trace' or 'partition')\n", *fig)
			os.Exit(2)
		}
		figures = []int{n}
	}
	for _, n := range figures {
		start := time.Now()
		tables, err := runner.Figure(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(figure %d computed in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}

// runSessionScenario measures the multi-query Session: one stock stream fans
// out to 1, 4, 16 and 64 registered queries, reporting the feed's
// events/second (one pass through the session serves all queries) against
// the summed time of independent sequential Runtime passes. Every session
// run must reproduce the sequential per-query match counts — the table is
// also a correctness check.
func runSessionScenario(symbols, events int, window event.Time, seed int64) error {
	if symbols < 4 {
		return fmt.Errorf("-symbols must be at least 4 (query templates span four symbols), got %d", symbols)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	fmt.Printf("session scenario: %d events over %d symbols, window %dms\n\n", len(stream), symbols, window)

	// Deterministic query set: cycling templates over rng-drawn symbol
	// combinations, each planned from its own measured statistics.
	rng := rand.New(rand.NewSource(seed + 23))
	makeQueries := func(n int) ([]cep.QueryConfig, error) {
		out := make([]cep.QueryConfig, 0, n)
		for i := 0; i < n; i++ {
			syms := rng.Perm(symbols)
			var src string
			switch i % 3 {
			case 0:
				src = fmt.Sprintf(
					`PATTERN SEQ(S%03d a, S%03d b) WHERE a.difference < b.difference WITHIN %d ms`,
					syms[0], syms[1], window)
			case 1:
				src = fmt.Sprintf(
					`PATTERN AND(S%03d a, S%03d b, S%03d c) WHERE a.bucket = b.bucket WITHIN %d ms`,
					syms[0], syms[1], syms[2], window/2)
			default:
				src = fmt.Sprintf(
					`PATTERN SEQ(S%03d a, NOT(S%03d n), S%03d b) WITHIN %d ms`,
					syms[0], syms[1], syms[2], window)
			}
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name:    fmt.Sprintf("q%02d", i),
				Pattern: p,
				Stats:   cep.Measure(stream, p),
			})
		}
		return out, nil
	}

	table := harness.Table{
		Title:   "Session throughput (feed events/s) vs registered queries",
		Columns: []string{"queries", "events/s", "seq events/s", "speedup", "matches", "elapsed", "seq elapsed"},
	}
	for _, n := range []int{1, 4, 16, 64} {
		queries, err := makeQueries(n)
		if err != nil {
			return err
		}
		// Sequential reference: one independent runtime pass per query.
		seqCounts := make(map[string]int, n)
		seqTotal := 0
		seqStart := time.Now()
		for _, qc := range queries {
			rt, err := cep.NewFromConfig(qc)
			if err != nil {
				return err
			}
			ms, err := rt.ProcessAll(workload.ResetStream(stream))
			if err != nil {
				return err
			}
			seqCounts[qc.Name] = len(ms)
			seqTotal += len(ms)
		}
		seqElapsed := time.Since(seqStart)
		// The sequential reference re-reads the feed once per query.
		seqRate := float64(len(stream)) / seqElapsed.Seconds()

		s := cep.NewSession(cep.SessionConfig{QueueLen: 1024})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				return err
			}
		}
		evs := workload.ResetStream(stream)
		start := time.Now()
		if err := s.Run(context.Background(), cep.NewStream(evs)); err != nil {
			return err
		}
		if _, err := s.Flush(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		rate := float64(len(stream)) / elapsed.Seconds()

		matches := fmt.Sprint(seqTotal)
		for _, qc := range queries {
			if got := len(s.Matches(qc.Name)); got != seqCounts[qc.Name] {
				matches = fmt.Sprintf("%s (MISMATCH: %s got %d, want %d)", matches, qc.Name, got, seqCounts[qc.Name])
				break
			}
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f", seqRate),
			fmt.Sprintf("%.2f", rate/seqRate), matches,
			elapsed.Round(time.Millisecond).String(), seqElapsed.Round(time.Millisecond).String(),
		})
	}
	table.Fprint(os.Stdout)
	return nil
}

// mqoRow is one measurement of the shared-subplan scenario, emitted as
// JSON for CI trend tracking.
type mqoRow struct {
	Queries        int     `json:"queries"`
	SharedRate     float64 `json:"shared_events_per_sec"`
	UnsharedRate   float64 `json:"unshared_events_per_sec"`
	Speedup        float64 `json:"speedup"`
	Matches        int     `json:"matches"`
	MatchesOK      bool    `json:"matches_ok"`
	SharedQueries  int     `json:"shared_queries"`
	DAGNodes       int     `json:"dag_nodes"`
	DAGSharedNodes int     `json:"dag_shared_nodes"`
	Restructured   int     `json:"restructured"`
	ModelUnshared  float64 `json:"model_unshared_cost"`
	ModelShared    float64 `json:"model_shared_cost"`
}

// runMQOScenario measures the multi-query shared-subplan optimizer: N
// overlapping queries — all joining the same hot symbol pair, each with its
// own tail symbol — served by a ShareSubplans session versus the default
// per-query-worker session, on the same stream. Every run must reproduce
// the unshared per-query match counts — the table is also a correctness
// check. The rows are emitted both as a table and as a JSON array on
// stdout.
func runMQOScenario(symbols, events int, queryCounts string, window event.Time, seed int64) error {
	if symbols < 4 {
		return fmt.Errorf("-symbols must be at least 4 (hot pair + tails), got %d", symbols)
	}
	var counts []int
	for _, part := range strings.Split(queryCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -mqo-queries %q", queryCounts)
		}
		counts = append(counts, n)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	// The hot pair: the two fastest symbols, so the shared (a ⋈ b) sub-join
	// carries the bulk of the work; tails cycle over the remaining symbols.
	type symRate struct {
		name string
		rate float64
	}
	bySpeed := make([]symRate, 0, len(stocks.Symbols))
	for _, s := range stocks.Symbols {
		bySpeed = append(bySpeed, symRate{s, stocks.Rates[s]})
	}
	sort.Slice(bySpeed, func(i, j int) bool { return bySpeed[i].rate > bySpeed[j].rate })
	hotA, hotB := bySpeed[0].name, bySpeed[1].name
	tails := bySpeed[2:]
	fmt.Printf("mqo scenario: %d events over %d symbols, window %dms, hot pair %s⋈%s\n\n",
		len(stream), symbols, window, hotA, hotB)

	makeQueries := func(n int) ([]cep.QueryConfig, error) {
		out := make([]cep.QueryConfig, 0, n)
		for i := 0; i < n; i++ {
			tail := tails[i%len(tails)].name
			var src string
			if i%4 == 3 {
				// Every fourth query is a negation pattern: the positive core
				// (a, b, c) still shares with the plain queries; the NOT is
				// checked at this query's root only.
				neg := tails[(i+1)%len(tails)].name
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, NOT(%s n), %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, neg, tail, window)
			} else {
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, tail, window)
			}
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name:    fmt.Sprintf("q%02d", i),
				Pattern: p,
				Stats:   cep.Measure(stream, p),
			})
		}
		return out, nil
	}

	runSession := func(queries []cep.QueryConfig, share bool) (time.Duration, map[string]int, *cep.ShareReport, error) {
		s := cep.NewSession(cep.SessionConfig{QueueLen: 1024, ShareSubplans: share})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				return 0, nil, nil, err
			}
		}
		evs := workload.ResetStream(stream)
		start := time.Now()
		if err := s.Run(context.Background(), cep.NewStream(evs)); err != nil {
			return 0, nil, nil, err
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, nil, err
		}
		elapsed := time.Since(start)
		perQuery := make(map[string]int, len(queries))
		for _, qc := range queries {
			perQuery[qc.Name] = len(s.Matches(qc.Name))
		}
		return elapsed, perQuery, s.ShareReport(), nil
	}

	table := harness.Table{
		Title: "Shared-subplan session throughput (feed events/s), shared vs unshared",
		Columns: []string{"queries", "shared ev/s", "unshared ev/s", "speedup",
			"matches", "shared queries", "dag nodes", "elapsed", "unshared elapsed"},
	}
	var rows []mqoRow
	for _, n := range counts {
		queries, err := makeQueries(n)
		if err != nil {
			return err
		}
		unElapsed, unCounts, _, err := runSession(queries, false)
		if err != nil {
			return err
		}
		shElapsed, shCounts, report, err := runSession(queries, true)
		if err != nil {
			return err
		}
		row := mqoRow{
			Queries:      n,
			SharedRate:   float64(len(stream)) / shElapsed.Seconds(),
			UnsharedRate: float64(len(stream)) / unElapsed.Seconds(),
			MatchesOK:    true,
		}
		row.Speedup = row.SharedRate / row.UnsharedRate
		matches := 0
		for name, want := range unCounts {
			matches += want
			if shCounts[name] != want {
				row.MatchesOK = false
			}
		}
		row.Matches = matches
		if report != nil {
			row.SharedQueries = report.Shared
			row.DAGNodes = report.Nodes
			row.DAGSharedNodes = report.SharedNodes
			row.Restructured = report.Restructured
			row.ModelUnshared = report.UnsharedCost
			row.ModelShared = report.SharedCost
		}
		rows = append(rows, row)
		matchCell := fmt.Sprint(matches)
		if !row.MatchesOK {
			matchCell += " (MISMATCH shared vs unshared!)"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprintf("%.0f", row.SharedRate), fmt.Sprintf("%.0f", row.UnsharedRate),
			fmt.Sprintf("%.2f", row.Speedup), matchCell, fmt.Sprint(row.SharedQueries),
			fmt.Sprint(row.DAGNodes),
			shElapsed.Round(time.Millisecond).String(), unElapsed.Round(time.Millisecond).String(),
		})
	}
	table.Fprint(os.Stdout)
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	for _, row := range rows {
		if !row.MatchesOK {
			return fmt.Errorf("match-count mismatch at %d queries", row.Queries)
		}
	}
	return nil
}

// batchRow is one (query count, batch size) measurement of the batched
// intake scenario; the keys (fig, queries, batch) identify a row across
// BENCH_*.json files for cmd/benchdiff.
type batchRow struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_ref"`
	Matches      int     `json:"matches"`
	MatchesOK    bool    `json:"matches_ok"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

// runBatchScenario measures the batched intake hot path on the mqo
// workload: N overlapping queries (hot pair ⋈ tails, every fourth a
// negation pattern) on a ShareSubplans session, fed through SubmitBatch in
// chunks of each configured size. Batch size 1 degenerates to per-event
// Submit. The first configured size is the reference: every other size
// must reproduce its per-query match counts exactly, so the table doubles
// as a batching-semantics check. Rows go to stdout as a table and a JSON
// array, and to jsonPath as a JSON file when set — the input format of
// cmd/benchdiff.
func runBatchScenario(symbols, events int, queryCounts, batchSizes string, window event.Time, seed int64, jsonPath string) error {
	if symbols < 12 {
		return fmt.Errorf("-symbols must be at least 12 (four hot pairs + tails), got %d", symbols)
	}
	parseInts := func(flagName, s string) ([]int, error) {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("invalid %s %q", flagName, s)
			}
			out = append(out, n)
		}
		return out, nil
	}
	counts, err := parseInts("-batch-queries", queryCounts)
	if err != nil {
		return err
	}
	sizes, err := parseInts("-batch-sizes", batchSizes)
	if err != nil {
		return err
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	type symRate struct {
		name string
		rate float64
	}
	bySpeed := make([]symRate, 0, len(stocks.Symbols))
	for _, s := range stocks.Symbols {
		bySpeed = append(bySpeed, symRate{s, stocks.Rates[s]})
	}
	sort.Slice(bySpeed, func(i, j int) bool { return bySpeed[i].rate > bySpeed[j].rate })
	// Queries are grouped into up to four sharing families, each joining its
	// own hot pair: the optimizer builds one shared component (one pool lane)
	// per family, so the per-event cost of a Submit is one queue handoff per
	// lane — exactly what SubmitBatch amortizes.
	const families = 4
	tails := bySpeed[2*families:]
	fmt.Printf("batch scenario: %d events over %d symbols, window %dms, %d hot-pair families, batch sizes %v\n\n",
		len(stream), symbols, window, families, sizes)

	makeQueries := func(n int) ([]cep.QueryConfig, error) {
		out := make([]cep.QueryConfig, 0, n)
		for i := 0; i < n; i++ {
			fam := (i / 4) % families
			famA, famB := bySpeed[2*fam].name, bySpeed[2*fam+1].name
			tail := tails[i%len(tails)].name
			var src string
			if i%4 == 3 {
				neg := tails[(i+1)%len(tails)].name
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, NOT(%s n), %s c)
					 WHERE a.bucket = b.bucket AND a.bucket = %d AND b.bucket = c.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					famA, famB, neg, tail, i%4, window)
			} else {
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, %s c)
					 WHERE a.bucket = b.bucket AND a.bucket = %d AND b.bucket = c.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					famA, famB, tail, i%4, window)
			}
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name:    fmt.Sprintf("q%02d", i),
				Pattern: p,
				Stats:   cep.Measure(stream, p),
			})
		}
		return out, nil
	}

	runBatched := func(queries []cep.QueryConfig, batch int) (time.Duration, map[string]int, error) {
		s := cep.NewSession(cep.SessionConfig{QueueLen: 1024, ShareSubplans: true})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				return 0, nil, err
			}
		}
		if err := s.Start(); err != nil {
			return 0, nil, err
		}
		evs := workload.ResetStream(stream)
		start := time.Now()
		if batch <= 1 {
			for _, ev := range evs {
				if err := s.Submit(ev); err != nil {
					return 0, nil, err
				}
			}
		} else {
			for i := 0; i < len(evs); i += batch {
				end := i + batch
				if end > len(evs) {
					end = len(evs)
				}
				if err := s.SubmitBatch(evs[i:end]); err != nil {
					return 0, nil, err
				}
			}
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, err
		}
		elapsed := time.Since(start)
		perQuery := make(map[string]int, len(queries))
		for _, qc := range queries {
			perQuery[qc.Name] = len(s.Matches(qc.Name))
		}
		return elapsed, perQuery, nil
	}

	table := harness.Table{
		Title:   "Batched intake throughput (feed events/s) by SubmitBatch size",
		Columns: []string{"queries", "batch", "ev/s", "speedup vs ref", "matches", "elapsed"},
	}
	var rows []batchRow
	for _, n := range counts {
		queries, err := makeQueries(n)
		if err != nil {
			return err
		}
		var refRate float64
		var refCounts map[string]int
		for si, b := range sizes {
			elapsed, perQuery, err := runBatched(queries, b)
			if err != nil {
				return err
			}
			row := batchRow{
				Fig:          "batch",
				Queries:      n,
				Batch:        b,
				EventsPerSec: float64(len(stream)) / elapsed.Seconds(),
				MatchesOK:    true,
				ElapsedMS:    elapsed.Milliseconds(),
			}
			if si == 0 {
				refRate, refCounts = row.EventsPerSec, perQuery
			}
			row.Speedup = row.EventsPerSec / refRate
			for name, want := range refCounts {
				row.Matches += perQuery[name]
				if perQuery[name] != want {
					row.MatchesOK = false
				}
			}
			rows = append(rows, row)
			matchCell := fmt.Sprint(row.Matches)
			if !row.MatchesOK {
				matchCell += " (MISMATCH vs reference batch size!)"
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(b), fmt.Sprintf("%.0f", row.EventsPerSec),
				fmt.Sprintf("%.2f", row.Speedup), matchCell,
				elapsed.Round(time.Millisecond).String(),
			})
		}
	}
	table.Fprint(os.Stdout)
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(rows written to %s)\n", jsonPath)
	}
	for _, row := range rows {
		if !row.MatchesOK {
			return fmt.Errorf("match-count mismatch at %d queries, batch %d", row.Queries, row.Batch)
		}
	}
	return nil
}

// indexRow is one (index on/off, query count) measurement of the ingress
// filter-index scenario. The index state is encoded in Fig ("index-on" /
// "index-off") so the row keeps the fig/queries/batch key cmd/benchdiff
// understands: its -min-speedup gate divides the events_per_sec of the two
// rows sharing a query count. Events is recorded per row because the off
// runs at high query counts process a reduced stream (broadcast fan-out is
// too slow to feed the full one); rates are per-second either way, so the
// pairs stay comparable.
type indexRow struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_off"`
	Matches      int64   `json:"matches"`
	MatchesOK    bool    `json:"matches_ok"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

// runIndexScenario measures the ingress filter index
// (SessionConfig.FilterIndex) on a workload built for discrimination
// rather than joins: 16 event types carrying one attribute v in 0..399, and
// n two-term SEQ queries whose constant predicates (equality on both
// positions; every fourth query a ten-wide range band on the first) make
// each query care about a tiny slice of the stream. A broadcast session
// pays one queue handoff per registered lane per event; the filter index
// pays one type dispatch plus a hash/bound-list probe and hands the event
// only to the lanes whose subscription it satisfies. Each configured query
// count runs index-off then index-on over the same stream; per-query match
// counts are cross-checked at the first (smallest) count, where the off
// run still covers the full stream. Rows go to stdout as a table and JSON,
// and to jsonPath when set — the input of cmd/benchdiff's speedup gate.
func runIndexScenario(events int, queryCounts string, window event.Time, seed int64, jsonPath string) error {
	var counts []int
	for _, part := range strings.Split(queryCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -index-queries %q", queryCounts)
		}
		counts = append(counts, n)
	}

	const nTypes = 16
	const vCard = 400
	const feedBatch = 256
	schemas := make([]*event.Schema, nTypes)
	typeNames := make([]string, nTypes)
	for i := range schemas {
		typeNames[i] = fmt.Sprintf("T%02d", i)
		schemas[i] = event.NewSchema(typeNames[i], "v")
	}
	rng := rand.New(rand.NewSource(seed))
	stream := make([]*event.Event, events)
	for i := range stream {
		stream[i] = event.New(schemas[rng.Intn(nTypes)], event.Time(i+1), float64(rng.Intn(vCard)))
	}
	cep.Stamp(stream)

	// The query generator restarts from the same seed for every run, so the
	// on and off sessions of a count register identical query sets.
	makeQueries := func(n int) []cep.QueryConfig {
		qrng := rand.New(rand.NewSource(seed + 1))
		out := make([]cep.QueryConfig, n)
		for i := range out {
			ta := typeNames[qrng.Intn(nTypes)]
			tb := typeNames[qrng.Intn(nTypes)]
			p := cep.Seq(window, cep.E(ta, "a"), cep.E(tb, "b"))
			if i%4 == 3 {
				lo := float64(qrng.Intn(vCard - 10))
				p = p.Where(
					cep.Cmp(cep.Ref("a", "v"), cep.Ge, cep.Const(lo)),
					cep.Cmp(cep.Ref("a", "v"), cep.Lt, cep.Const(lo+10)),
					cep.Cmp(cep.Ref("b", "v"), cep.Eq, cep.Const(float64(qrng.Intn(vCard)))),
				)
			} else {
				p = p.Where(
					cep.Cmp(cep.Ref("a", "v"), cep.Eq, cep.Const(float64(qrng.Intn(vCard)))),
					cep.Cmp(cep.Ref("b", "v"), cep.Eq, cep.Const(float64(qrng.Intn(vCard)))),
				)
			}
			out[i] = cep.QueryConfig{Name: fmt.Sprintf("q%05d", i), Pattern: p}
		}
		return out
	}

	// Matches are counted through OnMatch (and the sessions closed) so a
	// 10000-query run neither retains every match nor leaks 10000 workers.
	// Stats stay nil: Measure over 10000 patterns would dominate the run,
	// and two-term plans have only one shape anyway.
	run := func(n, nEvents int, filterIndex bool) (time.Duration, []int64, *cep.IndexReport, error) {
		queries := makeQueries(n)
		matched := make([]atomic.Int64, n)
		s := cep.NewSession(cep.SessionConfig{QueueLen: 64, FilterIndex: filterIndex})
		for i, qc := range queries {
			c := &matched[i]
			qc.OnMatch = func(*cep.Match) { c.Add(1) }
			if err := s.Register(qc); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := s.Start(); err != nil {
			return 0, nil, nil, err
		}
		evs := workload.ResetStream(stream[:nEvents])
		start := time.Now()
		for i := 0; i < len(evs); i += feedBatch {
			end := min(i+feedBatch, len(evs))
			if err := s.SubmitBatch(evs[i:end]); err != nil {
				return 0, nil, nil, err
			}
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, nil, err
		}
		elapsed := time.Since(start)
		rep := s.IndexReport()
		if err := s.Close(); err != nil {
			return 0, nil, nil, err
		}
		perQuery := make([]int64, n)
		for i := range matched {
			perQuery[i] = matched[i].Load()
		}
		return elapsed, perQuery, rep, nil
	}

	fmt.Printf("index scenario: %d events over %d types, window %dms, feed batch %d; index-off runs a reduced stream at high query counts\n\n",
		events, nTypes, window, feedBatch)
	table := harness.Table{
		Title:   "Ingress filter index: feed throughput (events/s), index on vs off",
		Columns: []string{"queries", "index", "events", "ev/s", "speedup vs off", "matches", "elapsed"},
	}
	var rows []indexRow
	crossChecked := true
	for ci, n := range counts {
		// Broadcast cost grows linearly with the lane count, so the off run
		// gets a budget of ~4M lane handoffs: full stream at 64 queries,
		// 4000 events at 1000, 400 at 10000.
		offEvents := min(events, max(250, 4_000_000/n))
		offElapsed, offCounts, _, err := run(n, offEvents, false)
		if err != nil {
			return fmt.Errorf("queries=%d index-off: %w", n, err)
		}
		onElapsed, onCounts, rep, err := run(n, events, true)
		if err != nil {
			return fmt.Errorf("queries=%d index-on: %w", n, err)
		}
		matchesOK := true
		if ci == 0 && offEvents == events {
			for i := range onCounts {
				if onCounts[i] != offCounts[i] {
					matchesOK = false
					crossChecked = false
				}
			}
		}
		offRate := float64(offEvents) / offElapsed.Seconds()
		onRate := float64(events) / onElapsed.Seconds()
		var offTotal, onTotal int64
		for _, c := range offCounts {
			offTotal += c
		}
		for _, c := range onCounts {
			onTotal += c
		}
		pair := []indexRow{
			{Fig: "index-off", Queries: n, Batch: feedBatch, Events: offEvents,
				EventsPerSec: offRate, Speedup: 1, Matches: offTotal, MatchesOK: matchesOK,
				ElapsedMS: offElapsed.Milliseconds()},
			{Fig: "index-on", Queries: n, Batch: feedBatch, Events: events,
				EventsPerSec: onRate, Speedup: onRate / offRate, Matches: onTotal, MatchesOK: matchesOK,
				ElapsedMS: onElapsed.Milliseconds()},
		}
		rows = append(rows, pair...)
		for _, row := range pair {
			matchCell := fmt.Sprint(row.Matches)
			if !row.MatchesOK {
				matchCell += " (MISMATCH on vs off!)"
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), strings.TrimPrefix(row.Fig, "index-"), fmt.Sprint(row.Events),
				fmt.Sprintf("%.0f", row.EventsPerSec), fmt.Sprintf("%.2f", row.Speedup),
				matchCell, (time.Duration(row.ElapsedMS) * time.Millisecond).String(),
			})
		}
		if rep != nil {
			var evN, hits int64
			var constraints int
			for _, tr := range rep.Types {
				evN += tr.Events
				hits += tr.Hits
				constraints += tr.IndexedConstraints
			}
			fmt.Printf("queries=%d index-on: %d subscriptions over %d lanes, %d indexed constraints, avg %.2f routed lanes/event (broadcast would pay %d)\n",
				n, rep.Subscriptions, rep.Lanes, constraints,
				float64(hits)/float64(max(evN, 1)), rep.Lanes+rep.AlwaysLanes)
		}
	}
	fmt.Println()
	table.Fprint(os.Stdout)
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(rows written to %s)\n", jsonPath)
	}
	if !crossChecked {
		return fmt.Errorf("per-query match mismatch between index on and off at %d queries", counts[0])
	}
	return nil
}

// partitionRow is one (lane count, query count) measurement of the
// key-partitioned evaluation scenario. The lane count is encoded in Fig
// ("partition-p1" / "partition-p2" / "partition-p4") so the row keeps the
// fig/queries/batch key cmd/benchdiff understands: its -min-speedup gate
// divides the events_per_sec of two rows sharing a query count.
type partitionRow struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	Partitions   int     `json:"partitions"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_p1"`
	Matches      int64   `json:"matches"`
	MatchesOK    bool    `json:"matches_ok"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

// runPartitionScenario measures key-partitioned shared evaluation on a
// workload built so the keyed nested-loop combine dominates: a quiet A/B
// head pair (5% of the stream each) joins first in every plan — cheap and
// selective, so the optimizer shares one (A ⋈ B) sub-join across all n
// queries — and each query extends it to one of eight hot tail symbols
// (70% of the stream together), every position chained by k-equality. The
// expensive work is the roots probing the hot tail buffers and the fat
// shared-instance buffer, and all of it is keyed, so every lane owns ~1/P
// of each buffer and ~1/P of the arrivals. Timestamps advance 1ms per
// event, so the window measures the join buffers directly. Each query
// count runs at every configured lane count over the same stream; the
// first lane count (normally 1) is the reference whose per-query match
// counts every other run must reproduce exactly. The host may have a
// single core — the expected speedup is algorithmic (N²/P probe work), not
// parallel. Rows go to stdout as a table and JSON, and to jsonPath when
// set — the input of cmd/benchdiff's speedup gate.
func runPartitionScenario(events int, queryCounts, laneCounts string, window event.Time, seed int64, jsonPath string) error {
	parseInts := func(flagName, s string) ([]int, error) {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("invalid %s %q", flagName, s)
			}
			out = append(out, n)
		}
		return out, nil
	}
	counts, err := parseInts("-partition-queries", queryCounts)
	if err != nil {
		return err
	}
	parts, err := parseInts("-partition-workers", laneCounts)
	if err != nil {
		return err
	}

	const nTails = 8
	const kCard = 64 // join-key cardinality: ~1/64 of probes pair up
	const vCard = 10
	const feedBatch = 256
	schemaA := event.NewSchema("A", "k", "v")
	schemaB := event.NewSchema("B", "k", "v")
	tailSchemas := make([]*event.Schema, nTails)
	tailNames := make([]string, nTails)
	for i := range tailSchemas {
		tailNames[i] = fmt.Sprintf("T%d", i)
		tailSchemas[i] = event.NewSchema(tailNames[i], "k", "v")
	}
	rng := rand.New(rand.NewSource(seed))
	stream := make([]*event.Event, events)
	for i := range stream {
		var s *event.Schema
		switch r := rng.Float64(); {
		case r < 0.05:
			s = schemaA
		case r < 0.10:
			s = schemaB
		default:
			s = tailSchemas[rng.Intn(nTails)]
		}
		stream[i] = event.New(s, event.Time(i+1),
			float64(rng.Intn(kCard)), float64(rng.Intn(vCard)))
	}
	cep.Stamp(stream)

	makeQueries := func(n int) []cep.QueryConfig {
		out := make([]cep.QueryConfig, n)
		for i := range out {
			tail := tailNames[i%nTails]
			p := cep.Seq(window,
				cep.E("A", "a"), cep.E("B", "b"), cep.E(tail, "c"),
			).Where(
				cep.AttrCmp("a", "k", cep.Eq, "b", "k"),
				cep.AttrCmp("b", "k", cep.Eq, "c", "k"),
				cep.AttrCmp("a", "v", cep.Lt, "b", "v"),
				cep.AttrCmp("b", "v", cep.Lt, "c", "v"),
				// A per-query constant bound keeps the cycled tails distinct
				// and completion rare relative to the probe work.
				cep.Cmp(cep.Ref("c", "v"), cep.Ge, cep.Const(float64(6+(i/nTails)%3))),
			)
			out[i] = cep.QueryConfig{
				Name: fmt.Sprintf("q%02d", i), Pattern: p,
				Stats: cep.Measure(stream, p),
			}
		}
		return out
	}

	run := func(queries []cep.QueryConfig, p int) (time.Duration, []int64, *cep.ShareReport, error) {
		matched := make([]atomic.Int64, len(queries))
		s := cep.NewSession(cep.SessionConfig{
			QueueLen: 1024, ShareSubplans: true, FilterIndex: true, PartitionWorkers: p,
		})
		for i, qc := range queries {
			c := &matched[i]
			qc.OnMatch = func(*cep.Match) { c.Add(1) }
			if err := s.Register(qc); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := s.Start(); err != nil {
			return 0, nil, nil, err
		}
		rep := s.ShareReport()
		evs := workload.ResetStream(stream)
		start := time.Now()
		for i := 0; i < len(evs); i += feedBatch {
			end := min(i+feedBatch, len(evs))
			if err := s.SubmitBatch(evs[i:end]); err != nil {
				return 0, nil, nil, err
			}
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, nil, err
		}
		elapsed := time.Since(start)
		if err := s.Close(); err != nil {
			return 0, nil, nil, err
		}
		perQuery := make([]int64, len(queries))
		for i := range matched {
			perQuery[i] = matched[i].Load()
		}
		return elapsed, perQuery, rep, nil
	}

	fmt.Printf("partition scenario: %d events (5%%/5%% head A/B, %d hot tails), key cardinality %d, window %dms, lanes %v\n\n",
		events, nTails, kCard, window, parts)
	table := harness.Table{
		Title:   "Key-partitioned shared evaluation: feed throughput (events/s) vs partition lanes",
		Columns: []string{"queries", "lanes", "ev/s", "speedup vs p1", "matches", "elapsed"},
	}
	var rows []partitionRow
	allOK := true
	for _, n := range counts {
		queries := makeQueries(n)
		var refRate float64
		var refCounts []int64
		for pi, p := range parts {
			elapsed, perQuery, rep, err := run(queries, p)
			if err != nil {
				return fmt.Errorf("queries=%d lanes=%d: %w", n, p, err)
			}
			if rep != nil {
				for _, comp := range rep.Components {
					fmt.Printf("queries=%d lanes=%d: component of %d queries on %d lanes, partitions=%d attr=%q\n",
						n, p, len(comp.Members), comp.Lanes, comp.Partitions, comp.PartitionAttr)
				}
				if len(rep.Components) == 0 {
					fmt.Printf("queries=%d lanes=%d: NO sharing component formed\n", n, p)
				}
			}
			row := partitionRow{
				Fig:          fmt.Sprintf("partition-p%d", p),
				Queries:      n,
				Batch:        feedBatch,
				Partitions:   p,
				EventsPerSec: float64(len(stream)) / elapsed.Seconds(),
				MatchesOK:    true,
				ElapsedMS:    elapsed.Milliseconds(),
			}
			if pi == 0 {
				refRate, refCounts = row.EventsPerSec, perQuery
			}
			row.Speedup = row.EventsPerSec / refRate
			for i, c := range perQuery {
				row.Matches += c
				if c != refCounts[i] {
					row.MatchesOK = false
					allOK = false
				}
			}
			rows = append(rows, row)
			matchCell := fmt.Sprint(row.Matches)
			if !row.MatchesOK {
				matchCell += " (MISMATCH vs reference lane count!)"
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(p), fmt.Sprintf("%.0f", row.EventsPerSec),
				fmt.Sprintf("%.2f", row.Speedup), matchCell,
				(time.Duration(row.ElapsedMS) * time.Millisecond).String(),
			})
		}
	}
	table.Fprint(os.Stdout)
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(rows written to %s)\n", jsonPath)
	}
	if !allOK {
		return fmt.Errorf("per-query match mismatch across partition lane counts")
	}
	return nil
}

// driftRow is the drift scenario's JSON measurement.
type driftRow struct {
	Events        int     `json:"events"`
	Queries       int     `json:"queries"`
	StaticEPS2    float64 `json:"static_phase2_events_per_sec"`
	AdaptiveEPS2  float64 `json:"adaptive_phase2_events_per_sec"`
	OracleEPS2    float64 `json:"oracle_phase2_events_per_sec"`
	Recovered     float64 `json:"recovered_fraction"`
	Reopts        int64   `json:"drift_reopts"`
	Checks        int64   `json:"drift_checks"`
	Generation    int     `json:"reopt_generation"`
	SharedBefore  int     `json:"shared_queries_before"`
	SharedAfter   int     `json:"shared_queries_after"`
	FormedShared  int     `json:"formed_shared_queries"`
	MatchesOK     bool    `json:"matches_ok"`
	ControlReopts int64   `json:"control_reopts"`
}

// driftStream generates a stock stream with explicit per-symbol rates.
func driftStream(stocks *workload.Stocks, events int, seed int64, rates map[string]float64) []*event.Event {
	gen := workload.NewStocks(workload.StockConfig{
		Symbols: stocks.Config.Symbols, Events: events, Seed: seed,
	})
	for sym := range gen.Rates {
		gen.Rates[sym] = 0
	}
	for sym, r := range rates {
		gen.Rates[sym] = r
	}
	return gen.Generate()
}

// medianFloat returns the median of xs (mean of the middle pair for even
// lengths). xs must be non-empty; it is not modified.
func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianDuration(ds []time.Duration) time.Duration {
	s := make([]float64, len(ds))
	for i, d := range ds {
		s[i] = float64(d)
	}
	return time.Duration(medianFloat(s))
}

// runDriftScenario measures session-level adaptivity under a mid-stream
// regime shift. Two sharing families run on one session:
//
//   - the dissolve family SEQ(A a, B b, T_i c) shares the (A,B) head pair,
//     cheap at planning time; after the shift A and B become the hottest
//     symbols and the tails go quiet, so keeping the shared pair means
//     paying a huge unselective cross product that a fresh replan avoids by
//     joining each query's (b, c) pair — with its selective bucket equality
//     — first (sharing dissolves to singleton lanes);
//
//   - the form family SEQ(U_j u, C b, D c) has a common (C,D) sub-join that
//     is too hot to share at planning time; after the shift it becomes cheap
//     and profitable, so the re-optimization forms the shared group.
//
// Three sessions process the identical stream: static-shared (planned on
// phase-1 statistics, no adaptivity), adaptive-shared (same plans plus
// drift monitoring) and oracle-shared (planned from scratch on phase-2
// statistics — the replan target). Phase-2 throughput is measured in
// process CPU time (see cpuNow below for why not wall clock); the
// adaptive session must recover at least half of the static→oracle gap,
// reproduce the private runtimes' per-query match counts exactly (no
// dropped or duplicated matches across the re-optimization splices), and a
// stationary control run must trigger zero re-optimizations.
func runDriftScenario(events, perFamily int, window event.Time, seed int64) error {
	if perFamily < 2 {
		return fmt.Errorf("-drift-family must be at least 2, got %d", perFamily)
	}
	if perFamily > 4 {
		perFamily = 4
	}
	const symbols = 12
	stocks := workload.NewStocks(workload.StockConfig{Symbols: symbols, Events: events / 2, Seed: seed})
	// Roles: S000/S001 the dissolve family's head pair, S002/S003 the form
	// family's common pair, S004-S007 tails, S008-S011 heads.
	hotA, hotB := "S000", "S001"
	pairC, pairD := "S002", "S003"
	tails := []string{"S004", "S005", "S006", "S007"}[:perFamily]
	heads := []string{"S008", "S009", "S010", "S011"}[:perFamily]

	// Phase-1 margins are wide (the cheapest join beats the runner-up ~3x)
	// so measurement noise on a stationary stream never flips a plan; the
	// phase-2 inversion then flips every margin decisively.
	rates1 := map[string]float64{hotA: 2, hotB: 2, pairC: 20, pairD: 20}
	rates2 := map[string]float64{hotA: 25, hotB: 25, pairC: 0.75, pairD: 0.75}
	for _, t := range tails {
		rates1[t], rates2[t] = 30, 0.5
	}
	for _, u := range heads {
		rates1[u], rates2[u] = 1.5, 15
	}

	// The split is 25/75: phase 1 only has to fix the initial plans and
	// warm the collector (warmup plus one estimation window), while phase 2
	// is the measured quantity — a longer phase 2 amortizes the adaptive
	// session's fixed costs (the pre-detection segment on stale plans and
	// the re-optimization splices themselves) the way a long-running
	// deployment would, instead of charging them against half the stream.
	phase1 := driftStream(stocks, events/4, seed, rates1)
	phase2 := driftStream(stocks, events-events/4, seed+101, rates2)
	if len(phase1) == 0 || len(phase2) == 0 {
		return fmt.Errorf("empty phase stream")
	}
	shift := phase1[len(phase1)-1].TS + 1
	for _, ev := range phase2 {
		ev.TS += shift
	}
	stream := append(append([]*event.Event(nil), phase1...), phase2...)
	boundary := len(phase1)
	fmt.Printf("drift scenario: %d events (%d + %d), window %dms, %d+%d queries, rate shift at t=%dms\n\n",
		len(stream), len(phase1), len(phase2), window, perFamily, perFamily, shift)

	makeQueries := func(history []*event.Event) ([]cep.QueryConfig, error) {
		var out []cep.QueryConfig
		for i, tail := range tails {
			src := fmt.Sprintf(
				`PATTERN SEQ(%s a, %s b, %s c)
				 WHERE a.difference < b.difference AND b.bucket = c.bucket
				 WITHIN %d ms`, hotA, hotB, tail, window)
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name: fmt.Sprintf("dis%02d", i), Pattern: p,
				Stats: cep.Measure(history, p),
			})
		}
		for j, head := range heads {
			src := fmt.Sprintf(
				`PATTERN SEQ(%s u, %s b, %s c)
				 WHERE u.difference < b.difference AND b.bucket = c.bucket
				 WITHIN %d ms`, head, pairC, pairD, window)
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name: fmt.Sprintf("frm%02d", j), Pattern: p,
				Stats: cep.Measure(history, p),
			})
		}
		return out, nil
	}

	adaptiveCfg := func() *cep.AdaptiveSessionConfig {
		// The check cadence is calibrated to the engine's per-event cost:
		// re-pricing a component's trees costs the same whether the engine
		// spends 5µs or 1µs per event, so with the batched/pooled hot path
		// the old 400-event cadence would burn a visible fraction of the
		// throughput it is trying to recover. 1000 keeps detection latency
		// (Hysteresis × CheckEvery ≈ 2k events) a couple percent of a
		// phase while monitoring overhead stays below measurement noise.
		return &cep.AdaptiveSessionConfig{
			CheckEvery:   1000,
			WarmupEvents: 4000,
			MinInterval:  4000,
			Threshold:    0.25,
			Hysteresis:   2,
			MaxPerCheck:  2,
			Window:       2 * window,
		}
	}

	type runOut struct {
		t1, t2   time.Duration
		counts   map[string]int
		share    *cep.ShareReport
		preShare *cep.ShareReport
		drift    *cep.DriftReport
	}
	// Phases are timed in process CPU time (user+system rusage), not wall
	// clock: the recovery gate divides *differences* of the three variants'
	// timings, and on a shared single-CPU box a noisy neighbor or cgroup
	// throttle stretches wall time by 2x between otherwise identical runs —
	// enough to flip the gate either way. CPU time charges each variant for
	// exactly the work its plans did. GC still counts, which is fair: the
	// garbage is the variant's own.
	cpuNow := func() time.Duration {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			return 0
		}
		return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
	}
	run := func(queries []cep.QueryConfig, adaptive *cep.AdaptiveSessionConfig, feed []*event.Event, split int) (*runOut, error) {
		// Matches flow to per-query counting sinks rather than accumulating:
		// on this single-box measurement the GC pressure of retaining every
		// match would swamp the throughput signal.
		counters := make([]int, len(queries))
		s := cep.NewSession(cep.SessionConfig{QueueLen: 1024, ShareSubplans: true, Adaptive: adaptive})
		for i, qc := range queries {
			i := i
			qc.OnMatch = func(*cep.Match) { counters[i]++ }
			if err := s.Register(qc); err != nil {
				return nil, err
			}
		}
		if err := s.Start(); err != nil {
			return nil, err
		}
		// The feed is batched so the timings measure engine and plan work,
		// not per-event queue handoffs — the quantity the recovery gate is
		// about. Batching is match-set-neutral (cross-checked below).
		const feedBatch = 64
		submitRange := func(evs []*event.Event) error {
			for i := 0; i < len(evs); i += feedBatch {
				end := i + feedBatch
				if end > len(evs) {
					end = len(evs)
				}
				if err := s.SubmitBatch(evs[i:end]); err != nil {
					return err
				}
			}
			return nil
		}
		out := &runOut{counts: map[string]int{}, preShare: s.ShareReport()}
		// Collect the previous run's garbage now so its GC debt is not
		// charged to this variant's CPU measurement.
		runtime.GC()
		start := cpuNow()
		if err := submitRange(feed[:split]); err != nil {
			return nil, err
		}
		out.t1 = cpuNow() - start
		start = cpuNow()
		if err := submitRange(feed[split:]); err != nil {
			return nil, err
		}
		out.share = s.ShareReport()
		out.drift = s.DriftReport()
		if _, err := s.Flush(); err != nil {
			return nil, err
		}
		out.t2 = cpuNow() - start
		for i, qc := range queries {
			out.counts[qc.Name] = counters[i]
		}
		return out, nil
	}
	// repeat runs one repetition of a variant, records its phase-2 CPU
	// time, and folds it into pick, keeping the fastest repetition for the
	// structural reports. Match counts must agree between repetitions.
	repeat := func(pick *runOut, queries []cep.QueryConfig, adaptive func() *cep.AdaptiveSessionConfig, t2s *[]time.Duration) (*runOut, error) {
		var cfg *cep.AdaptiveSessionConfig
		if adaptive != nil {
			cfg = adaptive()
		}
		out, err := run(queries, cfg, workload.ResetStream(stream), boundary)
		if err != nil {
			return nil, err
		}
		*t2s = append(*t2s, out.t2)
		if pick == nil || out.t2 < pick.t2 {
			pick, out = out, pick
		}
		if out != nil {
			for name, n := range out.counts {
				if pick.counts[name] != n {
					return nil, fmt.Errorf("repetition mismatch for %s: %d vs %d", name, pick.counts[name], n)
				}
			}
		}
		return pick, nil
	}

	queries, err := makeQueries(phase1)
	if err != nil {
		return err
	}
	oracleQueries, err := makeQueries(phase2)
	if err != nil {
		return err
	}

	// Each repetition runs the three variants back-to-back and the recovery
	// fraction is computed per repetition from those same-epoch timings:
	// machine-wide speed changes (frequency scaling, a noisy neighbor that
	// outlives one repetition) move all three measurements of a repetition
	// together and cancel in the ratio, where comparing each variant's best
	// timing separately can pair numbers from different machine epochs. The
	// median across repetitions then discards the odd repetition where a GC
	// cycle or scheduling burst landed inside one variant.
	const reps = 5
	var static, adapt, oracle *runOut
	var t2S, t2A, t2O []time.Duration
	for rep := 0; rep < reps; rep++ {
		if static, err = repeat(static, queries, nil, &t2S); err != nil {
			return err
		}
		if adapt, err = repeat(adapt, queries, adaptiveCfg, &t2A); err != nil {
			return err
		}
		if oracle, err = repeat(oracle, oracleQueries, nil, &t2O); err != nil {
			return err
		}
	}
	phase2Events := float64(len(stream) - boundary)
	eps := func(d time.Duration) float64 { return phase2Events / d.Seconds() }
	var recs []float64
	for i := range t2S {
		es, ea, eo := eps(t2S[i]), eps(t2A[i]), eps(t2O[i])
		if eo > es {
			recs = append(recs, (ea-es)/(eo-es))
		}
	}

	// Reference match counts from private runtimes (plan-independent for
	// the shareable fragment), checked against all three sessions.
	row := driftRow{
		Events: len(stream), Queries: 2 * perFamily, MatchesOK: true,
		StaticEPS2:   eps(medianDuration(t2S)),
		AdaptiveEPS2: eps(medianDuration(t2A)),
		OracleEPS2:   eps(medianDuration(t2O)),
	}
	checked := 0
	for _, qc := range queries {
		rt, err := cep.NewFromConfig(qc)
		if err != nil {
			return err
		}
		want, err := rt.ProcessAll(workload.ResetStream(stream))
		if err != nil {
			return err
		}
		checked += len(want)
		for who, out := range map[string]*runOut{"static": static, "adaptive": adapt, "oracle": oracle} {
			if got := out.counts[qc.Name]; got != len(want) {
				row.MatchesOK = false
				fmt.Printf("MISMATCH %s/%s: session %d, private %d\n", who, qc.Name, got, len(want))
			}
		}
	}
	if adapt.preShare != nil {
		row.SharedBefore = adapt.preShare.Shared
	}
	if adapt.share != nil {
		row.SharedAfter = adapt.share.Shared
		for _, comp := range adapt.share.Components {
			formed := 0
			for _, m := range comp.Members {
				if strings.HasPrefix(m, "frm") {
					formed++
				}
			}
			if formed >= 2 {
				row.FormedShared += formed
			}
		}
	}
	if adapt.drift != nil {
		row.Reopts = adapt.drift.Reopts
		row.Checks = adapt.drift.Checks
		row.Generation = adapt.drift.Generation
	}
	if len(recs) > 0 {
		row.Recovered = medianFloat(recs)
	}

	// Control: the same adaptive configuration on a stationary stream must
	// never re-optimize.
	control := driftStream(stocks, events, seed+211, rates1)
	ctl, err := run(queries, adaptiveCfg(), workload.ResetStream(control), len(control)/2)
	if err != nil {
		return err
	}
	if ctl.drift != nil {
		row.ControlReopts = ctl.drift.Reopts
	}

	table := harness.Table{
		Title: "Drift adaptivity: phase-2 throughput after a regime shift (events per CPU-second)",
		Columns: []string{"variant", "phase2 ev/s", "vs static", "reopts", "shared before/after",
			"phase1 cpu", "phase2 cpu"},
		Rows: [][]string{
			{"static-shared", fmt.Sprintf("%.0f", row.StaticEPS2), "1.00", "0",
				fmt.Sprintf("%d/%d", static.preShare.Shared, static.share.Shared),
				static.t1.Round(time.Millisecond).String(), medianDuration(t2S).Round(time.Millisecond).String()},
			{"adaptive-shared", fmt.Sprintf("%.0f", row.AdaptiveEPS2),
				fmt.Sprintf("%.2f", row.AdaptiveEPS2/row.StaticEPS2), fmt.Sprint(row.Reopts),
				fmt.Sprintf("%d/%d", row.SharedBefore, row.SharedAfter),
				adapt.t1.Round(time.Millisecond).String(), medianDuration(t2A).Round(time.Millisecond).String()},
			{"oracle-replanned", fmt.Sprintf("%.0f", row.OracleEPS2),
				fmt.Sprintf("%.2f", row.OracleEPS2/row.StaticEPS2), "0",
				fmt.Sprintf("%d/%d", oracle.preShare.Shared, oracle.share.Shared),
				oracle.t1.Round(time.Millisecond).String(), medianDuration(t2O).Round(time.Millisecond).String()},
		},
	}
	table.Fprint(os.Stdout)
	fmt.Printf("recovered %.0f%% of the static→oracle gap; %d matches cross-checked; control reopts %d\n",
		100*row.Recovered, checked, row.ControlReopts)
	blob, err := json.MarshalIndent([]driftRow{row}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)

	switch {
	case !row.MatchesOK:
		return fmt.Errorf("match-count mismatch across the re-optimization splice")
	case checked == 0:
		return fmt.Errorf("match cross-check was vacuous")
	case row.Reopts == 0:
		return fmt.Errorf("adaptive session did not detect the regime shift")
	case row.ControlReopts != 0:
		return fmt.Errorf("stationary control re-optimized %d times (flapping)", row.ControlReopts)
	case row.OracleEPS2 >= 1.3*row.StaticEPS2 && row.Recovered < 0.5:
		return fmt.Errorf("adaptive session recovered only %.0f%% of the throughput gap", 100*row.Recovered)
	}
	return nil
}

// runShardScenario measures the sharded runtime's scaling: one pattern over
// a bucket-partitioned stock stream, detected sequentially by
// PartitionedRuntime and then by ShardedRuntime at doubling worker counts.
// Every run must reproduce the sequential match count — the table is also a
// correctness check.
func runShardScenario(symbols, events, partitions int, window event.Time, seed int64) error {
	if symbols < 3 {
		return fmt.Errorf("-symbols must be at least 3 (the scenario pattern spans three symbols), got %d", symbols)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 45,
		Partitions: partitions, PartitionBy: workload.PartitionByBucket, Buckets: partitions,
	})
	stream := stocks.Generate()
	// The pattern compares `difference` attributes only: partitioning is by
	// bucket, so all events of one partition share a bucket value and any
	// bucket predicate would degenerate to constant true/false.
	rng := rand.New(rand.NewSource(seed + 17))
	syms := rng.Perm(symbols)[:3]
	src := fmt.Sprintf(
		`PATTERN SEQ(S%03d e0, S%03d e1, S%03d e2) WHERE e0.difference < e1.difference WITHIN %d ms`,
		syms[0], syms[1], syms[2], window)
	p, err := cep.ParsePatternWith(src, stocks.Registry)
	if err != nil {
		return err
	}
	st := cep.Measure(stream, p)
	fmt.Printf("shard scenario: %d events, %d partitions, window %dms, pattern %s\n\n",
		len(stream), partitions, window, p)

	// Sequential baseline.
	pr, err := cep.NewPartitioned(p, st, nil)
	if err != nil {
		return err
	}
	maxWorkers := runtime.NumCPU()
	if maxWorkers < 8 {
		maxWorkers = 8 // show the scaling curve even on small machines
	}
	workerCounts := []int{}
	for w := 1; w <= maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != maxWorkers {
		workerCounts = append(workerCounts, maxWorkers) // e.g. 12 cores: 1 2 4 8 12
	}
	start := time.Now()
	for _, ev := range stream {
		if _, err := pr.Process(ev); err != nil {
			return err
		}
	}
	if _, err := pr.Flush(); err != nil {
		return err
	}
	seqElapsed := time.Since(start)
	seqRate := float64(len(stream)) / seqElapsed.Seconds()

	table := harness.Table{
		Title:   "Sharded runtime throughput (events/s) vs worker count",
		Columns: []string{"workers", "events/s", "speedup", "matches", "stalls", "elapsed"},
		Rows: [][]string{{
			"seq", fmt.Sprintf("%.0f", seqRate), "1.00",
			fmt.Sprint(pr.Matches()), "-", seqElapsed.Round(time.Millisecond).String(),
		}},
	}
	for _, w := range workerCounts {
		evs := workload.ResetStream(stream)
		sr, err := cep.NewSharded(p, st, nil, cep.ShardConfig{Workers: w})
		if err != nil {
			return err
		}
		if err := sr.Start(); err != nil {
			return err
		}
		start := time.Now()
		const batch = 512
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if err := sr.SubmitBatch(evs[i:end]); err != nil {
				return err
			}
		}
		if _, err := sr.Flush(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		rate := float64(len(evs)) / elapsed.Seconds()
		var stalls int64
		for _, s := range sr.Stats() {
			stalls += s.Stalls
		}
		matches := fmt.Sprint(sr.Matches())
		if sr.Matches() != pr.Matches() {
			matches += " (MISMATCH vs sequential!)"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(w), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", rate/seqRate),
			matches, fmt.Sprint(stalls), elapsed.Round(time.Millisecond).String(),
		})
	}
	table.Fprint(os.Stdout)
	return nil
}

// churnRow is the churn scenario's JSON measurement.
type churnRow struct {
	Events       int     `json:"events"`
	BaseQueries  int     `json:"base_queries"`
	Adds         int     `json:"adds"`
	Removes      int     `json:"removes"`
	EventsPerSec float64 `json:"events_per_sec"`
	AvgReoptMS   float64 `json:"avg_reopt_ms"`
	MaxReoptMS   float64 `json:"max_reopt_ms"`
	FinalShared  int     `json:"final_shared_queries"`
	Generations  int     `json:"reopt_generations"`
	MatchesOK    bool    `json:"matches_ok"`
	CheckedTotal int     `json:"checked_matches"`
	FinalQueries int     `json:"final_queries"`
}

// runChurnScenario measures dynamic multi-query optimization: baseQ
// overlapping queries (the -fig mqo template mix, negation included) are
// registered up front on a ShareSubplans session, then ops AddQuery /
// RemoveQuery operations land at evenly spaced positions of the middle half
// of the feed, each timed individually — the re-optimization latency a
// live deployment would observe, drain included. Base queries present for
// the whole stream are cross-checked match-for-match against private
// runtimes; queries added mid-feed are checked against private runtimes
// over their suffix of the stream.
func runChurnScenario(symbols, events, baseQ, ops int, window event.Time, seed int64) error {
	if symbols < 4 {
		return fmt.Errorf("-symbols must be at least 4 (hot pair + tails), got %d", symbols)
	}
	if baseQ < 2 {
		return fmt.Errorf("-churn-queries must be at least 2, got %d", baseQ)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	type symRate struct {
		name string
		rate float64
	}
	bySpeed := make([]symRate, 0, len(stocks.Symbols))
	for _, s := range stocks.Symbols {
		bySpeed = append(bySpeed, symRate{s, stocks.Rates[s]})
	}
	sort.Slice(bySpeed, func(i, j int) bool { return bySpeed[i].rate > bySpeed[j].rate })
	hotA, hotB := bySpeed[0].name, bySpeed[1].name
	tails := bySpeed[2:]
	makeQuery := func(i int, prefix string) (cep.QueryConfig, error) {
		tail := tails[i%len(tails)].name
		var src string
		if i%4 == 3 {
			neg := tails[(i+1)%len(tails)].name
			src = fmt.Sprintf(
				`PATTERN SEQ(%s a, %s b, NOT(%s n), %s c)
				 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
				 WITHIN %d ms`,
				hotA, hotB, neg, tail, window)
		} else {
			src = fmt.Sprintf(
				`PATTERN SEQ(%s a, %s b, %s c)
				 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
				 WITHIN %d ms`,
				hotA, hotB, tail, window)
		}
		p, err := cep.ParsePatternWith(src, stocks.Registry)
		if err != nil {
			return cep.QueryConfig{}, err
		}
		return cep.QueryConfig{
			Name:    fmt.Sprintf("%s%02d", prefix, i),
			Pattern: p,
			Stats:   cep.Measure(stream, p),
		}, nil
	}

	s := cep.NewSession(cep.SessionConfig{QueueLen: 1024, ShareSubplans: true})
	base := make([]cep.QueryConfig, 0, baseQ)
	for i := 0; i < baseQ; i++ {
		qc, err := makeQuery(i, "q")
		if err != nil {
			return err
		}
		base = append(base, qc)
		if err := s.Register(qc); err != nil {
			return err
		}
	}
	if err := s.Start(); err != nil {
		return err
	}
	fmt.Printf("churn scenario: %d events, %d base queries, %d mid-feed operations, hot pair %s⋈%s\n\n",
		len(stream), baseQ, ops, hotA, hotB)

	// Operation schedule: evenly spaced through the middle half of the feed,
	// alternating add (of a fresh query) and remove (of the last add).
	type op struct {
		at   int
		add  bool
		qc   cep.QueryConfig
		name string
	}
	var plan []op
	var pendingAdds []cep.QueryConfig
	for k := 0; k < ops; k++ {
		at := len(stream)/4 + (k+1)*(len(stream)/2)/(ops+1)
		if k%2 == 0 {
			qc, err := makeQuery(k, "live")
			if err != nil {
				return err
			}
			plan = append(plan, op{at: at, add: true, qc: qc, name: qc.Name})
			pendingAdds = append(pendingAdds, qc)
		} else {
			last := pendingAdds[len(pendingAdds)-1]
			pendingAdds = pendingAdds[:len(pendingAdds)-1]
			plan = append(plan, op{at: at, add: false, name: last.Name})
		}
	}

	feed := workload.ResetStream(stream)
	addedAt := map[string]int{}
	var reopts []time.Duration
	adds, removes := 0, 0
	next := 0
	start := time.Now()
	for _, o := range plan {
		for ; next < o.at && next < len(feed); next++ {
			if err := s.Submit(feed[next]); err != nil {
				return err
			}
		}
		opStart := time.Now()
		if o.add {
			if err := s.AddQuery(o.qc); err != nil {
				return err
			}
			addedAt[o.name] = next
			adds++
		} else {
			if err := s.RemoveQuery(o.name); err != nil {
				return err
			}
			delete(addedAt, o.name)
			removes++
		}
		reopts = append(reopts, time.Since(opStart))
	}
	for ; next < len(feed); next++ {
		if err := s.Submit(feed[next]); err != nil {
			return err
		}
	}
	report := s.ShareReport()
	if _, err := s.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	row := churnRow{
		Events:       len(stream),
		BaseQueries:  baseQ,
		Adds:         adds,
		Removes:      removes,
		EventsPerSec: float64(len(stream)) / elapsed.Seconds(),
		MatchesOK:    true,
		FinalQueries: baseQ + len(addedAt),
	}
	if report != nil {
		row.FinalShared = report.Shared
		row.Generations = report.Generation
	}
	var sum time.Duration
	for _, d := range reopts {
		sum += d
		if ms := float64(d.Microseconds()) / 1000; ms > row.MaxReoptMS {
			row.MaxReoptMS = ms
		}
	}
	if len(reopts) > 0 {
		row.AvgReoptMS = float64(sum.Microseconds()) / 1000 / float64(len(reopts))
	}

	// Correctness: base queries against full-stream private runtimes,
	// added-and-kept queries against their suffix.
	check := func(qc cep.QueryConfig, suffix []*event.Event) error {
		rt, err := cep.NewFromConfig(qc)
		if err != nil {
			return err
		}
		want, err := rt.ProcessAll(suffix)
		if err != nil {
			return err
		}
		if got := len(s.Matches(qc.Name)); got != len(want) {
			row.MatchesOK = false
			fmt.Printf("MISMATCH %s: session %d, private %d\n", qc.Name, got, len(want))
		}
		row.CheckedTotal += len(want)
		return nil
	}
	for _, qc := range base {
		if err := check(qc, workload.ResetStream(stream)); err != nil {
			return err
		}
	}
	for _, qc := range pendingAdds {
		if err := check(qc, workload.ResetStream(stream)[addedAt[qc.Name]:]); err != nil {
			return err
		}
	}

	table := harness.Table{
		Title: "Dynamic MQO churn: live AddQuery/RemoveQuery on a sharing session",
		Columns: []string{"events/s", "adds", "removes", "avg reopt", "max reopt",
			"final shared", "generations", "checked matches"},
		Rows: [][]string{{
			fmt.Sprintf("%.0f", row.EventsPerSec), fmt.Sprint(adds), fmt.Sprint(removes),
			fmt.Sprintf("%.2fms", row.AvgReoptMS), fmt.Sprintf("%.2fms", row.MaxReoptMS),
			fmt.Sprint(row.FinalShared), fmt.Sprint(row.Generations), fmt.Sprint(row.CheckedTotal),
		}},
	}
	table.Fprint(os.Stdout)
	blob, err := json.MarshalIndent([]churnRow{row}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if !row.MatchesOK {
		return fmt.Errorf("churn match-count mismatch")
	}
	if row.CheckedTotal == 0 {
		return fmt.Errorf("churn cross-check was vacuous (no matches)")
	}
	return nil
}
