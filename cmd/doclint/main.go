// Command doclint checks that every relative markdown link in the
// repository's documentation resolves to an existing file or directory.
// It scans the given files and directories (default: every *.md in the
// working tree, recursively), extracts inline links and images, skips
// absolute URLs and intra-page anchors, and exits non-zero listing every
// dangling target — the CI gate that keeps README and docs/ navigable as
// the codebase grows.
//
// Usage:
//
//	doclint [path ...]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions `[id]: target` are matched by
// refRe.
var (
	linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	refRe  = regexp.MustCompile(`(?m)^\[[^\]]+\]:\s+(\S+)`)
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		info, err := os.Stat(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// Skip VCS internals and vendored trees.
				switch d.Name() {
				case ".git", "vendor", "node_modules":
					return filepath.SkipDir
				}
				return nil
			}
			if strings.EqualFold(filepath.Ext(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, target := range targets(string(data)) {
			if ok := resolves(file, target); !ok {
				fmt.Printf("%s: broken link %q\n", file, target)
				broken++
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d broken link(s) in %d file(s) scanned\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d file(s), all relative links resolve\n", len(files))
}

// targets extracts the candidate link targets of one document.
func targets(doc string) []string {
	var out []string
	for _, m := range linkRe.FindAllStringSubmatch(doc, -1) {
		out = append(out, m[1])
	}
	for _, m := range refRe.FindAllStringSubmatch(doc, -1) {
		out = append(out, m[1])
	}
	return out
}

// resolves reports whether the target of a link found in file points at
// something that exists. Absolute URLs and pure in-page anchors pass;
// relative paths are checked against the filesystem with any #fragment and
// ?query stripped.
func resolves(file, target string) bool {
	if target == "" {
		return false
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return true
	}
	if strings.HasPrefix(target, "#") {
		return true // in-page anchor; heading existence is out of scope
	}
	if i := strings.IndexAny(target, "#?"); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	path := target
	if !filepath.IsAbs(path) {
		path = filepath.Join(filepath.Dir(file), target)
	}
	_, err := os.Stat(path)
	return err == nil
}
