package cep

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// shardWorkload generates a bucket-partitioned stock stream and a pattern
// that can match inside every partition, plus measured statistics.
func shardWorkload(t testing.TB, nEvents, parts int) ([]*Event, *Pattern, *Stats) {
	t.Helper()
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 8, Events: nEvents, Seed: 7, MinRate: 1, MaxRate: 8,
		Partitions: parts, PartitionBy: workload.PartitionByBucket, Buckets: parts,
	})
	events := stocks.Generate()
	p, err := ParsePatternWith(
		`PATTERN SEQ(S000 a, S001 b, S002 c) WHERE a.difference < b.difference WITHIN 4 s`,
		stocks.Registry)
	if err != nil {
		t.Fatal(err)
	}
	return events, p, Measure(events, p)
}

// matchKeys returns the sorted multiset fingerprint of a match set.
func matchKeys(ms []*Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// sequentialOracle runs the events through the sequential PartitionedRuntime.
func sequentialOracle(t testing.TB, p *Pattern, st *Stats, events []*Event, opts ...Option) []*Match {
	t.Helper()
	pr, err := NewPartitioned(p, st, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Match
	for _, ev := range events {
		ms, err := pr.Process(ev)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
	}
	fl, err := pr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, fl...)
}

// TestShardedMatchesSequentialOracle is the core equivalence property: the
// sharded runtime emits exactly the sequential PartitionedRuntime's match
// set (as a multiset — shard interleaving permutes the order) for any
// worker count and under both skip-till strategies.
func TestShardedMatchesSequentialOracle(t *testing.T) {
	events, p, st := shardWorkload(t, 6000, 16)
	for _, strategy := range []Strategy{SkipTillAnyMatch, SkipTillNextMatch} {
		want := matchKeys(sequentialOracle(t, p, st, workload.ResetStream(events), WithStrategy(strategy)))
		if len(want) == 0 {
			t.Fatalf("oracle found no matches under %v; workload too sparse to test", strategy)
		}
		for _, workers := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("strategy=%v/workers=%d", strategy, workers), func(t *testing.T) {
				evs := workload.ResetStream(events)
				sr, err := NewSharded(p, st, nil, ShardConfig{Workers: workers}, WithStrategy(strategy))
				if err != nil {
					t.Fatal(err)
				}
				if err := sr.Start(); err != nil {
					t.Fatal(err)
				}
				for _, ev := range evs {
					if err := sr.Submit(ev); err != nil {
						t.Fatal(err)
					}
				}
				got, err := sr.Flush()
				if err != nil {
					t.Fatal(err)
				}
				if gotKeys := matchKeys(got); !equalStrings(gotKeys, want) {
					t.Fatalf("sharded (%d workers) emitted %d matches, oracle %d; match sets differ",
						workers, len(gotKeys), len(want))
				}
				if sr.Matches() != int64(len(want)) {
					t.Fatalf("Matches() = %d, want %d", sr.Matches(), len(want))
				}
			})
		}
	}
}

// TestShardedSubmitBatch checks that batched submission (including the
// consecutive same-shard run grouping) preserves the match set, with a
// deliberately tiny queue so the back-pressure path is exercised.
func TestShardedSubmitBatch(t *testing.T) {
	events, p, st := shardWorkload(t, 6000, 16)
	want := matchKeys(sequentialOracle(t, p, st, workload.ResetStream(events)))
	evs := workload.ResetStream(events)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 4, QueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	const batch = 64
	for i := 0; i < len(evs); i += batch {
		end := i + batch
		if end > len(evs) {
			end = len(evs)
		}
		if err := sr.SubmitBatch(evs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(matchKeys(got), want) {
		t.Fatalf("batched sharded run emitted %d matches, oracle %d", len(got), len(want))
	}
	var batches int64
	for _, s := range sr.Stats() {
		batches += s.Batches
	}
	if batches == 0 {
		t.Fatal("no batch submissions counted")
	}
}

// TestShardedSubBatchQueueItems pins the queue-item contract of
// SubmitBatch: one call enqueues exactly one item per destination shard
// (the per-shard sub-batch), never one per event.
func TestShardedSubBatchQueueItems(t *testing.T) {
	events, p, st := shardWorkload(t, 512, 16)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	evs := workload.ResetStream(events)
	shards := map[int]bool{}
	for _, ev := range evs {
		shards[sr.workerIndexFor(ev.Partition)] = true
	}
	if err := sr.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := sr.Drain(); err != nil {
		t.Fatal(err)
	}
	var batches, evCount int64
	for _, s := range sr.Stats() {
		batches += s.Batches
		evCount += s.Events
	}
	if batches != int64(len(shards)) {
		t.Fatalf("one SubmitBatch enqueued %d queue items, want %d (one per destination shard)",
			batches, len(shards))
	}
	if evCount != int64(len(evs)) {
		t.Fatalf("shards processed %d events, want %d", evCount, len(evs))
	}
	if _, err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBatchFlushDeterministic runs the same batched feed twice and
// requires Flush to return the matches in the same order both times: shard
// routing is a pure function of the partition id, sub-batches preserve
// per-partition order, and Flush concatenates shard by shard.
func TestShardedBatchFlushDeterministic(t *testing.T) {
	events, p, st := shardWorkload(t, 4000, 16)
	run := func() []string {
		evs := workload.ResetStream(events)
		sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Start(); err != nil {
			t.Fatal(err)
		}
		const batch = 128
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if err := sr.SubmitBatch(evs[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := sr.Flush()
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(got))
		for i, m := range got {
			keys[i] = m.Key()
		}
		return keys
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no matches; workload too sparse to test ordering")
	}
	second := run()
	if !equalStrings(first, second) {
		t.Fatalf("two identical batched runs flushed different match orders (%d vs %d matches)",
			len(first), len(second))
	}
}

// TestShardedProcessBatch checks the BatchDetector entry point: lazy start,
// nil-event refusal, and ErrClosed after Flush.
func TestShardedProcessBatch(t *testing.T) {
	events, p, st := shardWorkload(t, 512, 8)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	evs := workload.ResetStream(events)
	if _, err := sr.ProcessBatch([]*Event{evs[0], nil}); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil event in batch: got %v, want ErrNilEvent", err)
	}
	if ms, err := sr.ProcessBatch(evs); err != nil || ms != nil {
		t.Fatalf("ProcessBatch = (%v, %v), want (nil, nil)", ms, err)
	}
	if _, err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ProcessBatch(evs[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ProcessBatch after Flush: got %v, want ErrClosed", err)
	}
}

// TestShardedLifecycle exercises the Start/Drain/Close state machine and
// the counter snapshots.
func TestShardedLifecycle(t *testing.T) {
	events, p, st := shardWorkload(t, 2000, 8)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Submit(events[0]); err == nil {
		t.Fatal("Submit before Start should fail")
	}
	if err := sr.Drain(); err == nil {
		t.Fatal("Drain before Start should fail")
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	half := len(events) / 2
	if err := sr.SubmitBatch(events[:half]); err != nil {
		t.Fatal(err)
	}
	// Drain is a barrier: once it returns, every submitted event is counted.
	if err := sr.Drain(); err != nil {
		t.Fatal(err)
	}
	var seen int64
	for _, s := range sr.Stats() {
		seen += s.Events
	}
	if seen != int64(half) {
		t.Fatalf("after Drain, %d events counted, want %d", seen, half)
	}
	if err := sr.SubmitBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Submit(events[0]); err == nil {
		t.Fatal("Submit after Flush should fail")
	}
	if _, err := sr.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Flush = %v, want ErrClosed", err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("Close after Flush must be idempotent, got %v", err)
	}
	parts := map[int]bool{}
	for _, ev := range events {
		parts[ev.Partition] = true
	}
	var owned, total int64
	for _, s := range sr.Stats() {
		owned += s.Partitions
		total += s.Events
	}
	if owned != int64(len(parts)) {
		t.Fatalf("shards own %d partitions, stream has %d", owned, len(parts))
	}
	if total != int64(len(events)) {
		t.Fatalf("shards counted %d events, stream has %d", total, len(events))
	}
}

// TestShardedOnMatch checks the concurrent callback path: every match is
// delivered exactly once, and Close then returns no accumulated matches.
func TestShardedOnMatch(t *testing.T) {
	events, p, st := shardWorkload(t, 6000, 16)
	want := len(matchKeys(sequentialOracle(t, p, st, workload.ResetStream(events))))
	evs := workload.ResetStream(events)
	var delivered atomic.Int64
	sr, err := NewSharded(p, st, nil, ShardConfig{
		Workers: 4,
		OnMatch: func(m *Match) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sr.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	got, err := sr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("Close returned %d matches despite OnMatch", len(got))
	}
	if delivered.Load() != int64(want) {
		t.Fatalf("OnMatch delivered %d matches, oracle %d", delivered.Load(), want)
	}
}

// TestShardedPerPartitionPlans mirrors the PartitionedRuntime per-partition
// planning test through the sharded facade: partitions with opposite rate
// skews get opposite plans.
func TestShardedPerPartitionPlans(t *testing.T) {
	p, err := ParsePattern(`PATTERN SEQ(Login l, Trade t, Alert a) WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := NewStats(), NewStats()
	st1.SetRate("Login", 10)
	st1.SetRate("Trade", 10)
	st1.SetRate("Alert", 0.01)
	st2.SetRate("Login", 0.01)
	st2.SetRate("Trade", 10)
	st2.SetRate("Alert", 10)
	sr, err := NewSharded(p, nil, map[int]*Stats{1: st1, 2: st2},
		ShardConfig{Workers: 2}, WithAlgorithm(AlgDPLD))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sr.SubmitBatch(partitionedEvents()); err != nil {
		t.Fatal(err)
	}
	ms, err := sr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	if plan := sr.PlanFor(1); !strings.Contains(plan, "[a ") {
		t.Fatalf("partition 1 plan = %s", plan)
	}
	if plan := sr.PlanFor(2); !strings.Contains(plan, "[l ") {
		t.Fatalf("partition 2 plan = %s", plan)
	}
	if sr.PlanFor(99) != "" {
		t.Fatal("unseen partition should have no plan")
	}
}

// TestShardedStressConcurrentProducers is the race-detector stress test:
// many partitions, many workers, and one producer goroutine per partition
// group submitting concurrently (each partition's events stay in order
// within its producer). The total match count must equal the sequential
// oracle's.
func TestShardedStressConcurrentProducers(t *testing.T) {
	const producers = 8
	events, p, st := shardWorkload(t, 12000, 64)
	want := len(matchKeys(sequentialOracle(t, p, st, workload.ResetStream(events))))
	evs := workload.ResetStream(events)
	// Partition-disjoint producer feeds: partition % producers → producer,
	// preserving per-partition submission order.
	feeds := make([][]*Event, producers)
	for _, ev := range evs {
		i := ev.Partition % producers
		feeds[i] = append(feeds[i], ev)
	}
	sr, err := NewSharded(p, st, nil, ShardConfig{QueueLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, feed := range feeds {
		wg.Add(1)
		go func(feed []*Event) {
			defer wg.Done()
			for i := 0; i < len(feed); i += 32 {
				end := i + 32
				if end > len(feed) {
					end = len(feed)
				}
				if err := sr.SubmitBatch(feed[i:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(feed)
	}
	// A concurrent monitor hammers the snapshot path while producers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				sr.Stats()
				sr.Matches()
			}
		}
	}()
	wg.Wait()
	close(done)
	got, err := sr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("concurrent producers yielded %d matches, oracle %d", len(got), want)
	}
}

// TestShardedBadAlgorithm checks eager validation at construction.
func TestShardedBadAlgorithm(t *testing.T) {
	p, _ := ParsePattern(`PATTERN SEQ(Login l, Trade t) WITHIN 1 s`)
	if _, err := NewSharded(p, nil, nil, ShardConfig{}, WithAlgorithm("NOPE")); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedSubmitCloseRace checks that Close never races a queue send: a
// submitter either enqueues its event or gets the already-closed error —
// no "send on closed channel" panic. Run under -race.
func TestShardedSubmitCloseRace(t *testing.T) {
	events, p, st := shardWorkload(t, 4000, 16)
	for round := 0; round < 4; round++ {
		evs := workload.ResetStream(events)
		sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 2, QueueLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Start(); err != nil {
			t.Fatal(err)
		}
		// Partition-disjoint producers keep per-partition timestamp order
		// even while racing Close.
		feeds := make([][]*Event, 4)
		for _, ev := range evs {
			g := ev.Partition % 4
			feeds[g] = append(feeds[g], ev)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(feed []*Event) {
				defer wg.Done()
				for _, ev := range feed {
					if err := sr.Submit(ev); err != nil {
						if !strings.Contains(err.Error(), "closed") {
							t.Errorf("unexpected submit error: %v", err)
						}
						return
					}
				}
			}(feeds[g])
		}
		if err := sr.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
