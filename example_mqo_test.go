package cep_test

// Runnable example for the multi-query shared-subplan optimizer.

import (
	"context"
	"fmt"

	cep "repro"
)

// ExampleSessionConfig_shareSubplans serves three overlapping queries with
// SessionConfig.ShareSubplans: the optimizer detects that all three join
// the same (Login ⋈ Trade) sub-join under the same window, materializes it
// once on a shared evaluation DAG, and fans its partial matches out to each
// query's residual plan. Per-query match sets are identical to unshared
// evaluation — only the work is deduplicated.
func ExampleSessionConfig_shareSubplans() {
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user")
	alert := cep.NewSchema("Alert", "user")
	s := cep.NewSession(cep.SessionConfig{ShareSubplans: true})
	queries := []cep.QueryConfig{
		{Name: "login-trade", Query: `PATTERN SEQ(Login l, Trade t)
		                              WHERE l.user = t.user WITHIN 10 s`},
		{Name: "laundering", Query: `PATTERN SEQ(Login l, Trade t, Alert a)
		                             WHERE l.user = t.user WITHIN 10 s`},
		{Name: "laundering-2", Query: `PATTERN SEQ(Login l, Trade t, Alert a)
		                               WHERE l.user = t.user WITHIN 10 s`},
	}
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			panic(err)
		}
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(trade, 2000, 7),
		cep.NewEvent(alert, 3000, 7),
	})
	if err := s.Run(context.Background(), cep.NewStream(events)); err != nil {
		panic(err)
	}
	if _, err := s.Flush(); err != nil {
		panic(err)
	}
	r := s.ShareReport()
	fmt.Printf("shared %d of %d eligible queries on %d groups\n",
		r.Shared, r.Eligible, len(r.Groups))
	fmt.Println("login-trade:", len(s.Matches("login-trade")),
		"laundering:", len(s.Matches("laundering")),
		"laundering-2:", len(s.Matches("laundering-2")))
	// Output:
	// shared 3 of 3 eligible queries on 1 groups
	// login-trade: 1 laundering: 1 laundering-2: 1
}
