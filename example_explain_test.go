package cep_test

// Runnable example for the decision-explain surface: Session.Explain
// narrates why a query shares an evaluation lane (or stays private), which
// canonical sub-join key it shares under, the cost-model terms behind the
// decision, and how the component is (or is not) key-partitioned.

import (
	"fmt"

	cep "repro"
)

// ExampleSession_Explain registers two identical keyed queries on a
// sharing, partitioning session and asks why the first one landed where it
// did: the optimizer shared their common (A ⋈ B) sub-join and
// hash-partitioned the component on the chaining attribute k.
func ExampleSession_Explain() {
	s := cep.NewSession(cep.SessionConfig{
		ShareSubplans:    true,
		PartitionWorkers: 2,
	})
	for _, name := range []string{"twin-1", "twin-2"} {
		if err := s.Register(cep.QueryConfig{
			Name:  name,
			Query: `PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 10 s`,
		}); err != nil {
			panic(err)
		}
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	defer s.Close()

	ex, err := s.Explain("twin-1")
	if err != nil {
		panic(err)
	}
	fmt.Print(ex)
	// Output:
	// query "twin-1" [shared]
	//   eligible: true
	//   canonical keys: w10000|A{},B{}|(0,1)>$x.k = $y.k&$x.ts < $y.ts;
	//   component 0 (generation 0), members: twin-1, twin-2
	//   cost: private=140 shared=43.75 (nodes=3 shared=1 restructured=0)
	//   partitions: 2 on attribute "k"
}
