package cep

import (
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Extension algorithms beyond the paper's evaluated set (see internal/core):
// KBZ is the polynomial optimal planner for acyclic query graphs enabled by
// the ASI property (Section 4.3 / Appendix A); SIM-ANNEAL is the randomized
// family from the related work; AUTO picks by topology and size.
const (
	AlgKBZ       = core.AlgKBZ
	AlgSimAnneal = core.AlgSimAnneal
	AlgAuto      = core.AlgAuto
)

// AdaptiveRuntime is a pattern runtime that re-optimises its plan online
// when the stream statistics drift (Section 6.3 of the paper). It satisfies
// the Detector contract.
type AdaptiveRuntime struct {
	ctrl   *adaptive.Controller
	closed bool
}

// AdaptiveConfig tunes the re-optimisation loop; zero values select
// sensible defaults: check every 512 events, 25% improvement threshold, a
// warm-up of one check interval (512 events) before the first check, and
// the AlgGreedy planner under SkipTillAnyMatch. The defaults are asserted
// in TestAdaptiveConfigDefaults — change both together.
type AdaptiveConfig struct {
	Algorithm    string
	Strategy     Strategy
	CheckEvery   int
	Threshold    float64
	WarmupEvents int
}

// NewAdaptive builds an adaptive runtime; initial may be nil, in which case
// the first plan is generated under neutral statistics and refined online.
func NewAdaptive(p *Pattern, initial *Stats, cfg AdaptiveConfig) (*AdaptiveRuntime, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgGreedy
	}
	planner := &core.Planner{Algorithm: cfg.Algorithm, Strategy: cfg.Strategy}
	ctrl, err := adaptive.New(p, initial, adaptive.Config{
		Planner:      planner,
		CheckEvery:   cfg.CheckEvery,
		Threshold:    cfg.Threshold,
		WarmupEvents: cfg.WarmupEvents,
	})
	if err != nil {
		return nil, err
	}
	return &AdaptiveRuntime{ctrl: ctrl}, nil
}

// Process consumes one event and returns emitted matches. A nil event
// returns ErrNilEvent; after Flush or Close it returns ErrClosed.
func (a *AdaptiveRuntime) Process(e *Event) ([]*Match, error) {
	if a.closed {
		return nil, ErrClosed
	}
	if e == nil {
		return nil, ErrNilEvent
	}
	return a.ctrl.Process(e)
}

// Flush ends the stream, releasing pending matches and closing the runtime
// to further events. Flushing twice returns ErrClosed.
func (a *AdaptiveRuntime) Flush() ([]*Match, error) {
	if a.closed {
		return nil, ErrClosed
	}
	a.closed = true
	return a.ctrl.Flush(), nil
}

// Close releases the runtime without flushing; it is idempotent.
func (a *AdaptiveRuntime) Close() error {
	a.closed = true
	return nil
}

// Replans returns how many times the plan was regenerated.
func (a *AdaptiveRuntime) Replans() int64 { return a.ctrl.Stats().Replans }

// Matches returns the number of matches emitted so far.
func (a *AdaptiveRuntime) Matches() int64 { return a.ctrl.Stats().Matches }

// QueryTopology classifies the pattern's query graph (chain, star, tree,
// clique, general or disconnected) under the given statistics — the
// Section 4.3 taxonomy that decides when polynomial planning applies. For
// nested patterns the first DNF disjunct is classified.
func QueryTopology(p *Pattern, st *Stats) (string, error) {
	disjuncts, err := pattern.ToDNF(p)
	if err != nil {
		return "", err
	}
	if st == nil {
		return graph.FromPattern(disjuncts[0]).Classify().String(), nil
	}
	ps := stats.For(disjuncts[0], st)
	return graph.FromStats(ps).Classify().String(), nil
}
