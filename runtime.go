package cep

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/nfa"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/tree"
)

// Plan-generation algorithms (Section 7.1 of the paper). TRIVIAL, EFREQ and
// ZSTREAM are the native CPG baselines; the remainder are join-query
// techniques adapted to CEP.
const (
	AlgTrivial    = core.AlgTrivial
	AlgEFreq      = core.AlgEFreq
	AlgGreedy     = core.AlgGreedy
	AlgIIRandom   = core.AlgIIRandom
	AlgIIGreedy   = core.AlgIIGreedy
	AlgDPLD       = core.AlgDPLD
	AlgZStream    = core.AlgZStream
	AlgZStreamOrd = core.AlgZStreamOrd
	AlgDPB        = core.AlgDPB
)

// OrderAlgorithms lists the order-based plan generators.
func OrderAlgorithms() []string { return core.OrderAlgorithmNames() }

// TreeAlgorithms lists the tree-based plan generators.
func TreeAlgorithms() []string { return core.TreeAlgorithmNames() }

// Option configures a Runtime.
type Option func(*options)

type options struct {
	algorithm     string
	strategy      Strategy
	alpha         float64
	maxKleeneBase int
	onMatch       func(*Match)
	profileAnchor []*Event
}

// WithAlgorithm selects the plan-generation algorithm (default AlgGreedy,
// the paper's best quality/time trade-off).
func WithAlgorithm(name string) Option { return func(o *options) { o.algorithm = name } }

// WithStrategy selects the event selection strategy (default
// SkipTillAnyMatch).
func WithStrategy(s Strategy) Option { return func(o *options) { o.strategy = s } }

// WithLatencyWeight sets α of the hybrid cost model Cost_trpt + α·Cost_lat
// (Section 6.1); larger α trades throughput for lower detection latency.
func WithLatencyWeight(alpha float64) Option { return func(o *options) { o.alpha = alpha } }

// WithMaxKleeneBase bounds Kleene-closure power-set enumeration.
func WithMaxKleeneBase(n int) Option { return func(o *options) { o.maxKleeneBase = n } }

// WithOnMatch installs a callback invoked for every match as it is emitted.
func WithOnMatch(fn func(*Match)) Option { return func(o *options) { o.onMatch = fn } }

// WithProfiledLatencyAnchor enables the output profiler of Section 6.1 for
// conjunction patterns: the history slice is replayed once under a cheap
// plan, the profiler records which event most often arrives last in the
// emitted matches, and that position becomes the latency anchor of the
// hybrid cost model. It has an effect only together with a non-zero
// WithLatencyWeight (sequences derive their anchor from the pattern).
func WithProfiledLatencyAnchor(history []*Event) Option {
	return func(o *options) { o.profileAnchor = history }
}

// Runtime is a planned, executable pattern: one evaluation engine per DNF
// disjunct, behind the unified Detector contract.
type Runtime struct {
	pattern *Pattern
	plan    *core.Plan
	engines []metrics.Engine
	matches int64
	closed  bool
}

// New plans the pattern with the given statistics and builds its engines.
func New(p *Pattern, st *Stats, opts ...Option) (*Runtime, error) {
	o := options{algorithm: AlgGreedy, strategy: SkipTillAnyMatch}
	for _, opt := range opts {
		opt(&o)
	}
	if st == nil {
		st = NewStats()
	}
	planner := &core.Planner{Algorithm: o.algorithm, Strategy: o.strategy, Alpha: o.alpha}
	if o.alpha != 0 && len(o.profileAnchor) > 0 {
		anchor, err := profileAnchors(p, st, o.profileAnchor)
		if err != nil {
			return nil, err
		}
		planner.ConjAnchor = anchor
	}
	pl, err := planner.Plan(p, st)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{pattern: p, plan: pl}
	for _, sp := range pl.Simple {
		if sp.IsTree() {
			termRoot := sp.TreeTerms()
			e, err := tree.New(sp.Compiled, termRoot, tree.Config{
				Strategy:      o.strategy,
				MaxKleeneBase: o.maxKleeneBase,
				OnMatch:       o.onMatch,
				BufferCap:     bufferHints(sp, termRoot),
			})
			if err != nil {
				return nil, err
			}
			rt.engines = append(rt.engines, e)
		} else {
			e, err := nfa.New(sp.Compiled, sp.OrderTerms(), nfa.Config{
				Strategy:      o.strategy,
				MaxKleeneBase: o.maxKleeneBase,
				OnMatch:       o.onMatch,
			})
			if err != nil {
				return nil, err
			}
			rt.engines = append(rt.engines, e)
		}
	}
	return rt, nil
}

// maxBufferHint bounds the cost-model buffer pre-size hints handed to the
// engines; a mis-estimated rate must not become a huge up-front allocation.
const maxBufferHint = 4096

// bufferHints computes per-node instance-buffer pre-size hints for a tree
// plan: the cost model's expected partial-match volume PM(N) of every
// sub-join (Section 4.2), evaluated under the statistics the plan was built
// with — measured drift statistics on a re-optimization, registration-time
// statistics otherwise. sp.Tree is in planning positions (what the cost
// model reads); execRoot is the same shape in term positions (what the
// engine is built from), so the two trees are walked in lockstep.
func bufferHints(sp *core.SimplePlan, execRoot *plan.TreeNode) map[*plan.TreeNode]int {
	if sp.Tree == nil || sp.Stats == nil || execRoot == nil {
		return nil
	}
	hints := make(map[*plan.TreeNode]int)
	var walk func(pn, xn *plan.TreeNode)
	walk = func(pn, xn *plan.TreeNode) {
		c := int(cost.TreePM(sp.Stats, pn)) + 1
		if c > maxBufferHint {
			c = maxBufferHint
		}
		hints[xn] = c
		if !pn.IsLeaf() && !xn.IsLeaf() {
			walk(pn.Left, xn.Left)
			walk(pn.Right, xn.Right)
		}
	}
	walk(sp.Tree, execRoot)
	return hints
}

// Process feeds one event (timestamps must be non-decreasing) and returns
// the matches it completed. The returned slice is only valid until the next
// call. A nil event returns ErrNilEvent; after Flush or Close it returns
// ErrClosed.
func (rt *Runtime) Process(e *Event) ([]*Match, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	if e == nil {
		return nil, ErrNilEvent
	}
	var out []*Match
	for _, eng := range rt.engines {
		out = append(out, eng.Process(e)...)
	}
	rt.matches += int64(len(out))
	return out, nil
}

// ProcessBatch feeds a timestamp-ordered batch of events in one call and
// returns the matches the whole batch completed, in stream order. It is
// semantically identical to calling Process per event, but a single-engine
// runtime hands the batch to the engine in one wake-up, amortizing the
// per-event dispatch. The returned slice is only valid until the next call.
func (rt *Runtime) ProcessBatch(events []*Event) ([]*Match, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	for _, e := range events {
		if e == nil {
			return nil, ErrNilEvent
		}
	}
	if len(rt.engines) == 1 {
		if be, ok := rt.engines[0].(interface {
			ProcessBatch([]*Event) []*Match
		}); ok {
			out := be.ProcessBatch(events)
			rt.matches += int64(len(out))
			return out, nil
		}
	}
	var out []*Match
	for _, e := range events {
		for _, eng := range rt.engines {
			out = append(out, eng.Process(e)...)
		}
	}
	rt.matches += int64(len(out))
	return out, nil
}

// ProcessAll feeds a whole (timestamp-ordered, serial-stamped) slice and
// returns every match including flushed pendings. The runtime is flushed —
// and therefore closed — when it returns.
func (rt *Runtime) ProcessAll(events []*Event) ([]*Match, error) {
	var out []*Match
	for _, e := range events {
		ms, err := rt.Process(e)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	fl, err := rt.Flush()
	return append(out, fl...), err
}

// EventSource is a pull-based event stream (satisfied by the slice streams
// returned from the ingest helpers and by custom feeds).
type EventSource interface {
	// Next returns the next timestamp-ordered event, or nil at end of
	// stream.
	Next() *Event
}

// ProcessStream drains an event source through the runtime, invoking fn for
// every match (including flushed pendings). fn may be nil when only the
// side effects of WithOnMatch are wanted. The runtime is flushed when it
// returns.
func (rt *Runtime) ProcessStream(src EventSource, fn func(*Match)) error {
	emit := func(ms []*Match) {
		if fn == nil {
			return
		}
		for _, m := range ms {
			fn(m)
		}
	}
	for e := src.Next(); e != nil; e = src.Next() {
		ms, err := rt.Process(e)
		if err != nil {
			return err
		}
		emit(ms)
	}
	ms, err := rt.Flush()
	emit(ms)
	return err
}

// Flush ends the stream: it releases matches held back by trailing-negation
// windows and closes the runtime to further events. Flushing twice returns
// ErrClosed.
func (rt *Runtime) Flush() ([]*Match, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	rt.closed = true
	var out []*Match
	for _, eng := range rt.engines {
		out = append(out, eng.Flush()...)
	}
	rt.matches += int64(len(out))
	return out, nil
}

// Close releases the runtime without flushing: matches still held back by
// trailing-negation windows are discarded, and engines that pool partial
// matches return them. It is idempotent.
func (rt *Runtime) Close() error {
	rt.closed = true
	for _, eng := range rt.engines {
		if c, ok := eng.(interface{ Close() }); ok {
			c.Close()
		}
	}
	return nil
}

// PlanCost returns the cost-model estimate of the chosen plan (summed over
// disjuncts) — the quantity the planner minimised.
func (rt *Runtime) PlanCost() float64 { return rt.plan.TotalCost }

// Matches returns the number of matches emitted so far.
func (rt *Runtime) Matches() int64 { return rt.matches }

// State reports the current live partial matches and buffered events across
// all engines — the memory the cost model predicts.
func (rt *Runtime) State() (partialMatches, bufferedEvents int) {
	for _, eng := range rt.engines {
		partialMatches += eng.CurrentPartial()
		bufferedEvents += eng.CurrentBuffered()
	}
	return partialMatches, bufferedEvents
}

// Describe renders the chosen plan for logs and debugging.
func (rt *Runtime) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern: %s\n", rt.pattern)
	for i, sp := range rt.plan.Simple {
		if len(rt.plan.Simple) > 1 {
			fmt.Fprintf(&b, "disjunct %d: %s\n", i+1, sp.Compiled.Source)
		}
		if sp.IsTree() {
			fmt.Fprintf(&b, "  tree plan %s", describeTree(sp))
		} else {
			aliases := make([]string, len(sp.Order))
			for k, term := range sp.OrderTerms() {
				aliases[k] = sp.Compiled.Aliases[term]
			}
			fmt.Fprintf(&b, "  order plan [%s]", strings.Join(aliases, " "))
		}
		fmt.Fprintf(&b, "  (cost %.2f)", sp.Cost)
		if negs := sp.Compiled.Negs; len(negs) > 0 {
			names := make([]string, len(negs))
			for k, spec := range negs {
				names[k] = sp.Compiled.Aliases[spec.Pos]
			}
			fmt.Fprintf(&b, "  negated: [%s]", strings.Join(names, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// profileAnchors replays the history under a cheap throughput-only plan,
// feeding an output profiler per disjunct, and returns a ConjAnchor hook
// resolving the most-frequently-last term position to its planning index
// (Section 6.1's output profiler).
func profileAnchors(p *Pattern, st *Stats, history []*Event) (func(c *predicate.Compiled, ps *stats.PatternStats) int, error) {
	prePlanner := &core.Planner{Algorithm: AlgGreedy, Strategy: SkipTillAnyMatch}
	pre, err := prePlanner.Plan(p, st)
	if err != nil {
		return nil, err
	}
	// One profiler per disjunct, keyed by the compiled source pattern text.
	profilers := make(map[string]*metrics.OutputProfiler, len(pre.Simple))
	for _, sp := range pre.Simple {
		profiler := metrics.NewOutputProfiler()
		profilers[sp.Compiled.Source.String()] = profiler
		eng, err := nfa.New(sp.Compiled, sp.OrderTerms(), nfa.Config{
			OnMatch: profiler.Observe,
		})
		if err != nil {
			return nil, err
		}
		for _, ev := range history {
			eng.Process(ev)
		}
		eng.Flush()
	}
	return func(c *predicate.Compiled, ps *stats.PatternStats) int {
		profiler := profilers[c.Source.String()]
		if profiler == nil || profiler.Observations() == 0 {
			return -1
		}
		term := profiler.MostFrequentLast()
		for k, ti := range ps.TermIndex {
			if ti == term {
				return k
			}
		}
		return -1
	}, nil
}

func describeTree(sp *core.SimplePlan) string {
	return renderTree(sp.TreeTerms(), sp)
}

func renderTree(n *plan.TreeNode, sp *core.SimplePlan) string {
	if n.IsLeaf() {
		return sp.Compiled.Aliases[n.Leaf]
	}
	return "(" + renderTree(n.Left, sp) + " " + renderTree(n.Right, sp) + ")"
}
