package cep

// The Session side of the live telemetry layer (internal/telemetry):
// always-on hot-path counters, sampled detection-latency histograms, a
// bounded control-plane journal, and the TelemetryConfig knob. The
// exposition surfaces — Session.Metrics() and the HTTP handler — live in
// session_metrics.go.

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// TelemetryConfig tunes the session's built-in instrumentation. Telemetry
// is ON by default (SessionConfig.Telemetry == nil selects the defaults
// below): the hot-path cost is a handful of uncontended atomic adds per
// queue item, benchmarked within a few percent of a telemetry-off build
// (`cepbench -fig telemetry` pins the budget in CI). Set Disabled to strip
// even that.
type TelemetryConfig struct {
	// Disabled turns the layer off entirely: Session.Metrics() still
	// reports structure (queries, lanes, generations) but every counter
	// reads zero, no latencies are sampled, and no journal is kept.
	Disabled bool
	// LatencySampleEvery samples one of every N Submit/SubmitBatch calls
	// with a wall-clock stamp; the stamped item's matches observe
	// submit→emission detection latency (§6.1's measure, on live traffic).
	// Default 64; negative disables latency sampling only.
	LatencySampleEvery int
	// JournalCap bounds the control-plane journal (query churn, splices,
	// drift re-optimizations, index rebuilds); oldest entries are
	// overwritten. Default 256.
	JournalCap int
}

func (tc TelemetryConfig) withDefaults() TelemetryConfig {
	if tc.LatencySampleEvery == 0 {
		tc.LatencySampleEvery = 64
	}
	if tc.JournalCap <= 0 {
		tc.JournalCap = 256
	}
	return tc
}

// sessionTelemetry is the session-global half of the instrumentation: the
// feed-side counters (submission, routing, drops), the latency sampler and
// the control-plane journal. Per-lane counters live on each sessionLane
// (worker-owned, summed at snapshot time); per-query match counters on
// each sessionQuery. A nil *sessionTelemetry means telemetry is disabled —
// every hot-path site guards with one nil check.
type sessionTelemetry struct {
	eventsSubmitted  telemetry.Counter // events accepted by Submit/SubmitBatch
	batchesSubmitted telemetry.Counter // SubmitBatch calls accepted
	eventsRouted     telemetry.Counter // per-lane deliveries on the indexed path
	eventsDropped    telemetry.Counter // events the index matched to no lane

	sampler *telemetry.Sampler
	journal *telemetry.Journal
}

func newSessionTelemetry(cfg *TelemetryConfig) *sessionTelemetry {
	var tc TelemetryConfig
	if cfg != nil {
		tc = *cfg
	}
	if tc.Disabled {
		return nil
	}
	tc = tc.withDefaults()
	return &sessionTelemetry{
		sampler: telemetry.NewSampler(tc.LatencySampleEvery),
		journal: telemetry.NewJournal(tc.JournalCap),
	}
}

// record journals one control-plane transition; nil-safe, so call sites
// need no telemetry guard.
func (t *sessionTelemetry) record(streamSeq uint64, kind, detail string) {
	if t == nil {
		return
	}
	t.journal.Record(int64(streamSeq), kind, detail)
}

// recordf is record with formatting, skipped entirely when disabled so the
// fmt work is never paid for nothing.
func (t *sessionTelemetry) recordf(streamSeq uint64, kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.journal.Record(int64(streamSeq), kind, fmt.Sprintf(format, args...))
}

// recordKV journals a transition carrying ordered structured fields; the
// free-form Detail is rendered from the same pairs ("k=v k=v ...") so the
// two views never diverge. Nil-safe like record/recordf.
func (t *sessionTelemetry) recordKV(streamSeq uint64, kind string, fields ...telemetry.KV) {
	if t == nil {
		return
	}
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(f.Value)
	}
	t.journal.RecordFields(int64(streamSeq), kind, b.String(), fields)
}

// kv builds one journal field.
func kv(key string, value any) telemetry.KV {
	return telemetry.KV{Key: key, Value: fmt.Sprint(value)}
}
