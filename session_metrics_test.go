package cep

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

// metricsSession builds a started sharing+indexed session over the stock
// workload with latency sampling on every submission (so counting
// assertions are exact).
func metricsSession(t *testing.T, tc *TelemetryConfig) (*Session, []*Event) {
	t.Helper()
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 2000, Seed: 7, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	s := NewSession(SessionConfig{
		QueueLen: 64, ShareSubplans: true, FilterIndex: true, Telemetry: tc,
	})
	for _, qc := range stockQueries(t, stocks.Registry, events) {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, events
}

func TestSessionMetricsSnapshot(t *testing.T) {
	s, events := metricsSession(t, &TelemetryConfig{LatencySampleEvery: 1})
	defer s.Close()

	// Feed half per-event, half batched.
	half := len(events) / 2
	for _, ev := range events[:half] {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SubmitBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	m := s.Metrics()
	if !m.Enabled || !m.Started || m.Closed {
		t.Fatalf("flags: enabled=%v started=%v closed=%v", m.Enabled, m.Started, m.Closed)
	}
	if m.Queries != 4 {
		t.Fatalf("queries = %d, want 4", m.Queries)
	}
	if m.EventsSubmitted != int64(len(events)) {
		t.Fatalf("events_submitted = %d, want %d", m.EventsSubmitted, len(events))
	}
	if m.BatchesSubmitted != 1 {
		t.Fatalf("batches_submitted = %d, want 1", m.BatchesSubmitted)
	}
	if m.Seq != uint64(len(events)) {
		t.Fatalf("seq = %d, want %d", m.Seq, len(events))
	}
	if m.EventsRouted == 0 {
		t.Fatal("events_routed = 0 on an indexed session")
	}
	if m.ItemsProcessed == 0 || m.EventsProcessed == 0 {
		t.Fatalf("processed: items=%d events=%d", m.ItemsProcessed, m.EventsProcessed)
	}
	if m.MatchesEmitted == 0 {
		t.Fatal("no matches emitted; counting assertions are vacuous")
	}
	// Quiescent after Drain: the per-query counters must agree with the
	// lane aggregate, and — sampling every submission — every in-stream
	// match observed a latency sample.
	var perQuery int64
	for _, q := range m.PerQuery {
		perQuery += q.Matches
	}
	if perQuery != m.MatchesEmitted {
		t.Fatalf("per-query matches %d != lane aggregate %d", perQuery, m.MatchesEmitted)
	}
	if m.Latency.Count != m.MatchesEmitted {
		t.Fatalf("latency samples %d != matches %d (sample-every-1)", m.Latency.Count, m.MatchesEmitted)
	}
	if m.Latency.Sum <= 0 || m.MeanNS <= 0 || m.P99NS < m.P50NS {
		t.Fatalf("latency stats: sum=%d mean=%v p50=%d p99=%d", m.Latency.Sum, m.MeanNS, m.P50NS, m.P99NS)
	}
	if m.Lanes == 0 || m.LiveLanes == 0 || len(m.Queues) != m.Lanes {
		t.Fatalf("lanes=%d live=%d queues=%d", m.Lanes, m.LiveLanes, len(m.Queues))
	}
	for _, q := range m.Queues {
		if !q.Retired && q.Capacity != 64 {
			t.Fatalf("lane %d capacity = %d, want 64", q.Lane, q.Capacity)
		}
		if q.Kind != "shared" && q.Kind != "private" && q.Kind != "detector" {
			t.Fatalf("lane %d kind = %q", q.Lane, q.Kind)
		}
	}
	if m.Share == nil || m.Index == nil {
		t.Fatal("share/index reports missing from snapshot")
	}
	if m.Generation < m.Share.Generation {
		t.Fatalf("generation %d < share generation %d", m.Generation, m.Share.Generation)
	}
	if len(m.Journal) == 0 || m.Journal[0].Kind == "" {
		t.Fatal("journal empty after start")
	}
	hasStart := false
	for _, e := range m.Journal {
		if e.Kind == "start" {
			hasStart = true
		}
	}
	if !hasStart {
		t.Fatalf("journal lacks start entry: %+v", m.Journal)
	}
}

func TestSessionMetricsDisabled(t *testing.T) {
	s, events := metricsSession(t, &TelemetryConfig{Disabled: true})
	defer s.Close()
	if err := s.SubmitBatch(events[:500]); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Enabled {
		t.Fatal("telemetry reported enabled")
	}
	if m.EventsSubmitted != 0 || m.ItemsProcessed != 0 || m.Latency.Count != 0 || m.JournalRecorded != 0 {
		t.Fatalf("disabled telemetry counted: %+v", m)
	}
	// Structure still reports.
	if m.Queries != 4 || m.Seq != 500 || m.Lanes == 0 {
		t.Fatalf("structure missing: queries=%d seq=%d lanes=%d", m.Queries, m.Seq, m.Lanes)
	}
}

func TestSessionMetricsDroppedEvents(t *testing.T) {
	a := NewSchema("A", "k")
	b := NewSchema("B", "k")
	s := NewSession(SessionConfig{FilterIndex: true})
	if err := s.Register(QueryConfig{Name: "aa", Query: `PATTERN SEQ(A x, A y) WITHIN 5 s`}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	evs := Stamp([]*Event{
		NewEvent(a, 1000, 1), // routed
		NewEvent(b, 2000, 1), // no subscriber: dropped
		NewEvent(a, 3000, 2), // routed
		NewEvent(b, 4000, 2), // dropped
	})
	for _, ev := range evs[:2] {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SubmitBatch(evs[2:]); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.EventsDropped != 2 {
		t.Fatalf("events_dropped = %d, want 2", m.EventsDropped)
	}
	if m.EventsRouted != 2 {
		t.Fatalf("events_routed = %d, want 2", m.EventsRouted)
	}
}

func TestSessionMetricsJournalChurn(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 1000, Seed: 3, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	s := NewSession(SessionConfig{ShareSubplans: true, FilterIndex: true})
	for _, qc := range pool[:3] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitBatch(events[:200]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQuery(pool[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveQuery(pool[0].Name); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	kinds := map[string]int{}
	for _, e := range m.Journal {
		kinds[e.Kind]++
		if e.Seq < 0 || e.Wall.IsZero() {
			t.Fatalf("malformed journal entry: %+v", e)
		}
	}
	for _, want := range []string{"start", "add_query", "remove_query", "splice", "index_rebuild"} {
		if kinds[want] == 0 {
			t.Fatalf("journal lacks %q entries; kinds = %v", want, kinds)
		}
	}
	// The add/remove splices bumped the generation; the journaled stream
	// positions must not exceed the submitted count.
	if m.Generation == 0 {
		t.Fatal("generation = 0 after churn on overlapping queries")
	}
	for _, e := range m.Journal {
		if e.StreamSeq > int64(m.Seq) {
			t.Fatalf("journal stream seq %d beyond session seq %d", e.StreamSeq, m.Seq)
		}
	}
}

func TestMetricsHandlerEndpoints(t *testing.T) {
	s, events := metricsSession(t, nil)
	defer s.Close()
	if err := s.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE cep_events_submitted_total counter",
		"cep_events_submitted_total 2000",
		"cep_batches_submitted_total 1",
		"# TYPE cep_detection_latency_seconds histogram",
		"cep_detection_latency_seconds_count",
		"cep_queue_capacity{",
		`cep_query_matches_total{query="pairs"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap["events_submitted"].(float64) != 2000 {
		t.Fatalf("/metrics.json events_submitted = %v", snap["events_submitted"])
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["cep"]; !ok {
		t.Fatal("/debug/vars lacks cep var")
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", code)
	}
}

// TestSessionMetricsShards pins the sharded-detector branch of the unified
// snapshot: a registered ShardedRuntime's per-shard counters (and queue
// gauges) surface under Metrics().Shards.
func TestSessionMetricsShards(t *testing.T) {
	login := NewSchema("Login", "user")
	alert := NewSchema("Alert", "user")
	p, err := ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 5 s`)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(p, nil, nil, ShardConfig{Workers: 2, QueueLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionConfig{})
	if err := s.RegisterDetector("sharded", sharded, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	evs := Stamp([]*Event{
		NewEvent(login, 1000, 1), NewEvent(alert, 2000, 1),
		NewEvent(login, 3000, 2), NewEvent(alert, 4000, 2),
	})
	for i, ev := range evs {
		ev.Partition = i % 2
	}
	if err := s.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Session.Drain empties the session lanes; the sharded runtime queues
	// behind the detector lane drain on their own clock.
	if err := sharded.Drain(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if len(m.Shards) != 1 || m.Shards[0].Query != "sharded" {
		t.Fatalf("shards groups = %+v", m.Shards)
	}
	var shardEvents int64
	for _, sh := range m.Shards[0].Shards {
		shardEvents += sh.Events
		if sh.QueueCap != 8 {
			t.Fatalf("shard %d queue cap = %d, want 8", sh.Shard, sh.QueueCap)
		}
	}
	if shardEvents != int64(len(evs)) {
		t.Fatalf("shard events = %d, want %d", shardEvents, len(evs))
	}
	if len(m.Queues) != 1 || m.Queues[0].Kind != "detector" {
		t.Fatalf("queues = %+v", m.Queues)
	}
}
