package cep

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func workloadStocks() *workload.Stocks {
	return workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 3000, Seed: 41, MinRate: 1, MaxRate: 4, Partitions: 2,
	})
}

func partitionedEvents() []*Event {
	// Two partitions: matches must not mix them. A full match exists in
	// partition 1 and in partition 2, plus a cross-partition combination
	// that must NOT match.
	evs := []*Event{
		NewEvent(loginSchema, 1000, 1),
		NewEvent(tradeSchema, 2000, 1, 900),
		NewEvent(loginSchema, 2500, 2),
		NewEvent(alertSchema, 3000, 1),
		NewEvent(tradeSchema, 3500, 2, 800),
		NewEvent(alertSchema, 4000, 2),
	}
	evs[0].Partition, evs[1].Partition, evs[3].Partition = 1, 1, 1
	evs[2].Partition, evs[4].Partition, evs[5].Partition = 2, 2, 2
	return Stamp(evs)
}

func TestPartitionedRuntimeIsolatesPartitions(t *testing.T) {
	// Same-user predicate removed so that only partitioning separates the
	// streams: without isolation there would be cross-partition matches.
	p, err := ParsePattern(`PATTERN SEQ(Login l, Trade t, Alert a) WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPartitioned(p, nil, nil, WithAlgorithm(AlgGreedy))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ev := range partitionedEvents() {
		ms, err := pr.Process(ev)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ms)
	}
	fl, err := pr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	total += len(fl)
	// Partition 1: L@1000 T@2000 A@3000 → 1. Partition 2: L@2500 T@3500
	// A@4000 → 1. Cross-partition sequences are excluded by construction.
	if total != 2 {
		t.Fatalf("got %d matches, want 2", total)
	}
	if pr.Matches() != 2 {
		t.Fatalf("Matches() = %d", pr.Matches())
	}
	if got := len(pr.Partitions()); got != 2 {
		t.Fatalf("Partitions() = %d", got)
	}
}

func TestPartitionedRuntimePerPartitionPlans(t *testing.T) {
	p, err := ParsePattern(`PATTERN SEQ(Login l, Trade t, Alert a) WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1: Alert is rare → plan starts with a. Partition 2: Login
	// is rare → plan starts with l.
	st1, st2 := NewStats(), NewStats()
	st1.SetRate("Login", 10)
	st1.SetRate("Trade", 10)
	st1.SetRate("Alert", 0.01)
	st2.SetRate("Login", 0.01)
	st2.SetRate("Trade", 10)
	st2.SetRate("Alert", 10)
	pr, err := NewPartitioned(p, nil, map[int]*Stats{1: st1, 2: st2},
		WithAlgorithm(AlgDPLD))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range partitionedEvents() {
		if _, err := pr.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(pr.PlanFor(1), "[a ") {
		t.Fatalf("partition 1 plan = %s", pr.PlanFor(1))
	}
	if !strings.Contains(pr.PlanFor(2), "[l ") {
		t.Fatalf("partition 2 plan = %s", pr.PlanFor(2))
	}
	if pr.PlanFor(99) != "" {
		t.Fatal("unseen partition should have no plan")
	}
}

func TestPartitionedRuntimeFlushGuard(t *testing.T) {
	p, _ := ParsePattern(`PATTERN SEQ(Login l, Trade t) WITHIN 1 s`)
	pr, err := NewPartitioned(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Flush()
	if _, err := pr.Process(NewEvent(loginSchema, 1, 1)); err == nil {
		t.Fatal("Process after Flush should fail")
	}
}

func TestPartitionedRuntimeOverWorkload(t *testing.T) {
	// End-to-end: a partitioned stock stream, one runtime per partition,
	// total matches equal the sum of per-partition independent runs.
	stocks := workloadStocks()
	events := stocks.Generate()
	src := `PATTERN SEQ(S000 a, S001 b) WHERE a.difference < b.difference WITHIN 2 s`
	p, err := ParsePatternWith(src, stocks.Registry)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPartitioned(p, Measure(events, p), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := pr.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	pr.Flush()
	// Reference: filter events per partition and run plain runtimes.
	var want int64
	parts := map[int][]*Event{}
	for _, ev := range events {
		parts[ev.Partition] = append(parts[ev.Partition], ev)
	}
	for _, evs := range parts {
		rt, err := New(p, Measure(events, p))
		if err != nil {
			t.Fatal(err)
		}
		want += int64(len(processAll(t, rt, Stamp(evs))))
	}
	if pr.Matches() != want {
		t.Fatalf("partitioned matches = %d, per-partition reference = %d", pr.Matches(), want)
	}
}

// TestPartitionedFlushDeterministicOrder pins the Flush ordering contract:
// matches held back by trailing-negation windows are released partition by
// partition in ascending partition-id order, so two identical runs produce
// byte-identical flushed output without any sort-after-collect.
func TestPartitionedFlushDeterministicOrder(t *testing.T) {
	// Trailing negation holds each partition's match until end of stream.
	p, err := ParsePattern(`PATTERN SEQ(Login l, Trade t, NOT(Alert n)) WITHIN 1 minutes`)
	if err != nil {
		t.Fatal(err)
	}
	// Touch partitions in a scrambled order so map iteration (insertion
	// order notwithstanding) would permute an unsorted flush.
	buildEvents := func() []*Event {
		var evs []*Event
		ts := Time(0)
		for _, part := range []int{7, 2, 9, 0, 5, 3} {
			ts += 1000
			l := NewEvent(loginSchema, ts, float64(part))
			ts += 1000
			tr := NewEvent(tradeSchema, ts, float64(part), 100)
			l.Partition, tr.Partition = part, part
			evs = append(evs, l, tr)
		}
		return Stamp(evs)
	}
	run := func() []*Match {
		pr, err := NewPartitioned(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range buildEvents() {
			if _, err := pr.Process(ev); err != nil {
				t.Fatal(err)
			}
		}
		fl, err := pr.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}
	first := run()
	if len(first) != 6 {
		t.Fatalf("flushed %d matches, want 6", len(first))
	}
	// Ascending partition order within one run...
	prev := -1
	for _, m := range first {
		part := m.Events()[0].Partition
		if part < prev {
			t.Fatalf("flush order not sorted by partition: %d after %d", part, prev)
		}
		prev = part
	}
	// ...and byte-identical across runs.
	for round := 0; round < 5; round++ {
		if got := orderedKeys(run()); got != orderedKeys(first) {
			t.Fatalf("round %d: flush order differs from first run", round)
		}
	}
}

func TestPartitionedRuntimeBadAlgorithm(t *testing.T) {
	p, _ := ParsePattern(`PATTERN SEQ(Login l, Trade t) WITHIN 1 s`)
	if _, err := NewPartitioned(p, nil, nil, WithAlgorithm("NOPE")); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}
