package cep

import (
	"errors"
	"testing"
)

// TestDetectorContract drives every runtime flavor (and the Session front
// door) through the shared Detector protocol: nil events are refused with
// ErrNilEvent, Flush ends the stream, post-Flush use returns ErrClosed, and
// Close is idempotent.
func TestDetectorContract(t *testing.T) {
	pattern := func(t *testing.T) *Pattern {
		p, err := ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 10 s`)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	flavors := []struct {
		name  string
		build func(t *testing.T) Detector
	}{
		{"Runtime", func(t *testing.T) Detector {
			rt, err := New(pattern(t), nil)
			if err != nil {
				t.Fatal(err)
			}
			return rt
		}},
		{"AdaptiveRuntime", func(t *testing.T) Detector {
			rt, err := NewAdaptive(pattern(t), nil, AdaptiveConfig{})
			if err != nil {
				t.Fatal(err)
			}
			return rt
		}},
		{"PartitionedRuntime", func(t *testing.T) Detector {
			pr, err := NewPartitioned(pattern(t), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return pr
		}},
		{"ShardedRuntime", func(t *testing.T) Detector {
			sr, err := NewSharded(pattern(t), nil, nil, ShardConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			return sr
		}},
		{"Fleet", func(t *testing.T) Detector {
			rt, err := New(pattern(t), nil)
			if err != nil {
				t.Fatal(err)
			}
			return NewFleet(rt)
		}},
		{"Session", func(t *testing.T) Detector {
			s := NewSession(SessionConfig{})
			if err := s.Register(QueryConfig{Name: "q", Pattern: pattern(t)}); err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, f := range flavors {
		t.Run(f.name, func(t *testing.T) {
			d := f.build(t)
			if _, err := d.Process(nil); !errors.Is(err, ErrNilEvent) {
				t.Fatalf("Process(nil) = %v, want ErrNilEvent", err)
			}
			events := Stamp([]*Event{
				NewEvent(loginSchema, 1000, 7),
				NewEvent(alertSchema, 2000, 7),
			})
			var got int
			for _, ev := range events {
				ms, err := d.Process(ev)
				if err != nil {
					t.Fatalf("Process = %v", err)
				}
				got += len(ms)
			}
			fl, err := d.Flush()
			if err != nil {
				t.Fatalf("Flush = %v", err)
			}
			got += len(fl)
			// Concurrent flavors deliver through Flush; sequential ones
			// through Process. Either way the pair must be detected once.
			if got != 1 {
				t.Fatalf("detected %d matches, want 1", got)
			}
			if _, err := d.Process(events[0]); !errors.Is(err, ErrClosed) {
				t.Fatalf("Process after Flush = %v, want ErrClosed", err)
			}
			if _, err := d.Flush(); !errors.Is(err, ErrClosed) {
				t.Fatalf("second Flush = %v, want ErrClosed", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("Close after Flush = %v, want nil", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("second Close = %v, want nil", err)
			}
		})
	}
	// Close without Flush discards pendings and stays idempotent.
	for _, f := range flavors {
		t.Run(f.name+"/close-first", func(t *testing.T) {
			d := f.build(t)
			if err := d.Close(); err != nil {
				t.Fatalf("Close = %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("second Close = %v", err)
			}
			if _, err := d.Process(Stamp([]*Event{NewEvent(loginSchema, 1000, 7)})[0]); !errors.Is(err, ErrClosed) {
				t.Fatalf("Process after Close = %v, want ErrClosed", err)
			}
		})
	}
}
