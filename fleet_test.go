package cep

import (
	"errors"
	"testing"

	"repro/internal/workload"
)

func TestFleetMatchesSequentialRuns(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 10, Events: 3000, Seed: 31, MinRate: 1, MaxRate: 4,
	})
	events := stocks.Generate()

	patterns := []string{
		`PATTERN SEQ(S000 a, S001 b) WHERE a.difference < b.difference WITHIN 2 s`,
		`PATTERN AND(S002 a, S003 b, S004 c) WHERE a.bucket = b.bucket WITHIN 2 s`,
		`PATTERN SEQ(S005 a, NOT(S006 n), S007 b) WITHIN 2 s`,
	}
	// Sequential reference counts.
	var want []int
	for _, src := range patterns {
		p, err := ParsePatternWith(src, stocks.Registry)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(p, Measure(events, p))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, len(processAll(t, rt, events)))
	}
	// Concurrent fleet.
	var rts []*Runtime
	for _, src := range patterns {
		p, err := ParsePatternWith(src, stocks.Registry)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(p, Measure(events, p))
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	fleet := NewFleet(rts...)
	if fleet.Size() != 3 {
		t.Fatalf("Size = %d", fleet.Size())
	}
	results, err := fleet.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, ms := range results {
		if len(ms) != want[i] {
			t.Fatalf("pattern %d: fleet found %d matches, sequential %d", i, len(ms), want[i])
		}
	}
	if TotalMatches(results) != want[0]+want[1]+want[2] {
		t.Fatal("TotalMatches mismatch")
	}
}

// TestFleetNilEventError is the regression test for the old
// panic("cep: nil event in Fleet.Run slice"): a hole in the slice must
// surface as an error wrapping ErrNilEvent through the Detector error
// contract, not as a panic and not as a silently truncated run.
func TestFleetNilEventError(t *testing.T) {
	p, err := ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := demoEvents()
	events[2] = nil
	if _, err := NewFleet(rt).Run(events); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("Run over a slice with a nil hole returned %v, want ErrNilEvent", err)
	}
	// The synchronous Detector path refuses nil events the same way.
	rt2, _ := New(p, nil)
	if _, err := NewFleet(rt2).Process(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("Process(nil) = %v, want ErrNilEvent", err)
	}
}

func TestFleetEmpty(t *testing.T) {
	f := NewFleet()
	got, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty fleet produced %d results", len(got))
	}
}
