package cep

import (
	"strings"
	"testing"
)

// explainSession registers the given queries on a fresh session and starts
// it.
func explainSession(t *testing.T, cfg SessionConfig, qcs ...QueryConfig) *Session {
	t.Helper()
	s := NewSession(cfg)
	for _, qc := range qcs {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func explainString(t *testing.T, s *Session, query string) string {
	t.Helper()
	ex, err := s.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	return ex.String()
}

// TestExplainShared pins the rendering for a query sharing a multi-member
// DAG lane: eligibility, the canonical sub-join key, the member set and the
// cost-model terms that justified sharing.
func TestExplainShared(t *testing.T) {
	s := explainSession(t, SessionConfig{ShareSubplans: true},
		QueryConfig{Name: "twin-1", Query: `PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 10 s`},
		QueryConfig{Name: "twin-2", Query: `PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 10 s`},
	)
	defer s.Close()
	want := `query "twin-1" [shared]
  eligible: true
  canonical keys: w10000|A{},B{}|(0,1)>$x.k = $y.k&$x.ts < $y.ts;
  component 0 (generation 0), members: twin-1, twin-2
  cost: private=140 shared=87.5 (nodes=3 shared=1 restructured=0)
  partitions: none — partitioning disabled (SessionConfig.PartitionWorkers <= 1)
`
	if got := explainString(t, s, "twin-1"); got != want {
		t.Fatalf("explain mismatch:\n got: %q\nwant: %q", got, want)
	}
	ex, err := s.Explain("twin-1")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Eligible || ex.Kind != "shared" || ex.SharedCost >= ex.UnsharedCost {
		t.Fatalf("fields: %+v", ex)
	}
}

// TestExplainPrivate pins the rendering for an ineligible query (a
// non-skip-till-any-match strategy) and for an eligible query left on a
// singleton DAG lane for want of a sharing partner.
func TestExplainPrivate(t *testing.T) {
	s := explainSession(t, SessionConfig{ShareSubplans: true},
		QueryConfig{Name: "nm", Query: `PATTERN SEQ(A a, B b) WITHIN 10 s`, Strategy: SkipTillNextMatch},
		QueryConfig{Name: "twin", Query: `PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 10 s`},
	)
	defer s.Close()
	wantNM := `query "nm" [private]
  eligible: false — event selection strategy skip-till-next-match is not skip-till-any-match
`
	if got := explainString(t, s, "nm"); got != wantNM {
		t.Fatalf("explain mismatch:\n got: %q\nwant: %q", got, wantNM)
	}
	wantTwin := `query "twin" [singleton-dag]
  eligible: true — no profitable sharing partner found by the cost model
  canonical keys: w10000|A{},B{}|(0,1)>$x.k = $y.k&$x.ts < $y.ts;
  component 0 (generation 0), members: twin
  cost: private=70 shared=70 (nodes=3 shared=0 restructured=0)
  partitions: none — partitioning disabled (SessionConfig.PartitionWorkers <= 1)
`
	if got := explainString(t, s, "twin"); got != wantTwin {
		t.Fatalf("explain mismatch:\n got: %q\nwant: %q", got, wantTwin)
	}
}

// TestExplainPartitioned pins the rendering for a key-partitioned
// component: every member's positive positions chained by k-equality, so
// the component hash-partitions on "k".
func TestExplainPartitioned(t *testing.T) {
	s := explainSession(t, SessionConfig{ShareSubplans: true, PartitionWorkers: 2},
		QueryConfig{Name: "keyed-1", Query: `PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 10 s`},
		QueryConfig{Name: "keyed-2", Query: `PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 10 s`},
	)
	defer s.Close()
	ex, err := s.Explain("keyed-1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kind != "shared" || ex.Partitions != 2 || ex.PartitionAttr != "k" || ex.PartitionReason != "" {
		t.Fatalf("partition fields: %+v", ex)
	}
	if got := ex.String(); !strings.Contains(got, "partitions: 2 on attribute \"k\"\n") {
		t.Fatalf("missing partition line:\n%s", got)
	}
}

// TestExplainKeylessFallback pins the narrated reason when partitioning is
// requested but no attribute keys the component: the members join on an
// inequality, so no equi-join chain exists.
func TestExplainKeylessFallback(t *testing.T) {
	s := explainSession(t, SessionConfig{ShareSubplans: true, PartitionWorkers: 2},
		QueryConfig{Name: "loose-1", Query: `PATTERN SEQ(A a, B b) WHERE a.k < b.k WITHIN 10 s`},
		QueryConfig{Name: "loose-2", Query: `PATTERN SEQ(A a, B b) WHERE a.k < b.k WITHIN 10 s`},
	)
	defer s.Close()
	ex, err := s.Explain("loose-1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Partitions != 0 ||
		ex.PartitionReason != "no member carries an explicit equi-join between positive positions" {
		t.Fatalf("partition fields: %+v", ex)
	}
	if got := ex.String(); !strings.Contains(got,
		"partitions: none — no member carries an explicit equi-join between positive positions\n") {
		t.Fatalf("missing fallback line:\n%s", got)
	}
}

// TestExplainLifecycle covers the non-lane answers: unknown queries error,
// unstarted sessions report "pending", opaque detectors report why they
// cannot share.
func TestExplainLifecycle(t *testing.T) {
	s := NewSession(SessionConfig{ShareSubplans: true})
	if err := s.Register(QueryConfig{Name: "q", Query: `PATTERN SEQ(A a, B b) WITHIN 10 s`}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Explain("nope"); err == nil {
		t.Fatal("Explain of unknown query did not error")
	}
	ex, err := s.Explain("q")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kind != "pending" || !ex.Eligible {
		t.Fatalf("pre-start explain: %+v", ex)
	}
	p, err := ParsePattern(`PATTERN SEQ(A a, B b) WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDetector("det", rt, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ex, err = s.Explain("det")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kind != "private" || ex.Eligible || !ex.Detector ||
		!strings.Contains(ex.Reason, "opaque detector") {
		t.Fatalf("detector explain: %+v", ex)
	}
}
