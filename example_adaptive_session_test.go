package cep_test

// Runnable example for session-level adaptivity: drift monitoring with
// SessionConfig.Adaptive and the DriftReport observability snapshot.

import (
	"fmt"

	cep "repro"
)

// ExampleSessionConfig_adaptive serves two overlapping queries on a
// sharing session with statistics-drift monitoring enabled. The collector
// shadows every submitted event; every CheckEvery events the session
// re-prices each sharing component's running plans under the measured
// rates and selectivities and re-optimizes — draining, re-planning and
// splicing the affected shared DAG without dropping or duplicating matches
// — when the modeled improvement clears the threshold on consecutive
// checks. On this short, stationary stream the detector performs checks
// but never fires.
func ExampleSessionConfig_adaptive() {
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user")

	s := cep.NewSession(cep.SessionConfig{
		ShareSubplans: true,
		Adaptive: &cep.AdaptiveSessionConfig{
			CheckEvery: 8,    // drift check cadence, in events
			Threshold:  0.25, // min modeled cost improvement to re-optimize
			Hysteresis: 2,    // consecutive over-threshold checks required
		},
	})
	for _, name := range []string{"flow", "audit"} {
		if err := s.Register(cep.QueryConfig{
			Name:  name,
			Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 1 s`,
		}); err != nil {
			panic(err)
		}
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	var events []*cep.Event
	for i := 0; i < 32; i++ {
		events = append(events,
			cep.NewEvent(login, cep.Time(i*1000), float64(i%4)),
			cep.NewEvent(trade, cep.Time(i*1000+500), float64(i%4)),
		)
	}
	for _, e := range cep.Stamp(events) {
		if err := s.Submit(e); err != nil {
			panic(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		panic(err)
	}
	rep := s.DriftReport()
	fmt.Println("observed:", rep.Events, "reopts:", rep.Reopts,
		"flow:", len(s.Matches("flow")), "audit:", len(s.Matches("audit")))
	// Output: observed: 64 reopts: 0 flow: 32 audit: 32
}
