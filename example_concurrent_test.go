package cep_test

// Runnable examples for the three concurrent deployment shapes: a Fleet of
// patterns over one feed, a PartitionedRuntime with partition-local
// detection, and the sharded multi-core ShardedRuntime.

import (
	"fmt"

	cep "repro"
)

// ExampleFleet monitors two patterns over one feed, each on its own
// goroutine with a bounded queue.
//
// Caution: under SkipTillNextMatch the runtimes would share consumption
// marks on the events (a match in one runtime would consume events out from
// under the other); keep concurrent fleets on skip-till-any — the default —
// or give each runtime its own event slice.
func ExampleFleet() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	seq, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Alert a)
	                            WHERE l.user = a.user WITHIN 5 s`)
	conj, _ := cep.ParsePattern(`PATTERN AND(Login l, Alert a) WITHIN 5 s`)
	rt1, _ := cep.New(seq, nil)
	rt2, _ := cep.New(conj, nil)
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 3000, 9), // wrong user: only the AND matches it
	})
	results, err := cep.NewFleet(rt1, rt2).SetQueueLen(64).Run(events)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results[0]), len(results[1]), cep.TotalMatches(results))
	// Output: 1 2 3
}

// ExamplePartitionedRuntime detects a pattern independently inside each
// stream partition, planning each partition on first contact; matches never
// span partitions.
func ExamplePartitionedRuntime() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	// No user predicate: only partition isolation separates the streams.
	p, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 5 s`)
	pr, _ := cep.NewPartitioned(p, nil, nil)
	events := []*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(login, 1500, 9),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 2500, 9),
	}
	for i, ev := range events {
		ev.Partition = i % 2 // e.g. one partition per data centre
	}
	total := 0
	for _, ev := range cep.Stamp(events) {
		ms, _ := pr.Process(ev)
		total += len(ms)
	}
	flushed, _ := pr.Flush() // partitions flush in ascending id order
	total += len(flushed)
	// One Login→Alert per partition; the cross-partition pairs are excluded.
	fmt.Println(total, "matches over", len(pr.Partitions()), "partitions")
	// Output: 2 matches over 2 partitions
}

// ExampleShardedRuntime scales partition-local detection across worker
// goroutines: events are hash-routed by partition id, each worker owns a
// disjoint set of per-partition engines, and bounded queues apply
// back-pressure to the producer. The match set is exactly the sequential
// PartitionedRuntime's.
func ExampleShardedRuntime() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	p, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 5 s`)
	sr, _ := cep.NewSharded(p, nil, nil, cep.ShardConfig{Workers: 4})
	if err := sr.Start(); err != nil {
		panic(err)
	}
	events := []*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(login, 1500, 9),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 2500, 9),
	}
	for i, ev := range events {
		ev.Partition = i % 2
	}
	if err := sr.SubmitBatch(cep.Stamp(events)); err != nil {
		panic(err)
	}
	matches, err := sr.Flush() // drains queues, flushes engines, joins workers
	if err != nil {
		panic(err)
	}
	fmt.Println(len(matches), "matches on", sr.Workers(), "workers")
	// Output: 2 matches on 4 workers
}
