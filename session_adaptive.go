package cep

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/drift"
	"repro/internal/mqo"
	"repro/internal/plan"
	"repro/internal/stats"
)

// AdaptiveSessionConfig enables and tunes statistics-drift monitoring on a
// Session: an online collector shadows the feed, and when the measured
// rates and selectivities say a component's running plans have drifted too
// far from what a fresh replan would choose, the affected shared lanes are
// drained, re-planned under the measurements and spliced back (the same
// drain → re-plan → state-adoption pipeline that serves live query churn),
// without dropping or duplicating any surviving query's matches.
// Re-optimization may change sharing structure, not just join orders: a
// common sub-join that stopped winning is dissolved to singleton lanes, and
// a newly profitable one is formed across lanes that were private before.
//
// Private lanes — queries outside the shareable fragment, or any
// Register-ed query when ShareSubplans is off — adapt through the
// single-runtime re-optimization controller (internal/adaptive) fed from
// the same collector. That path swaps engines instead of splicing state:
// in-flight partial matches at a swap are discarded, so the exact-match
// guarantee across re-optimizations holds for the evaluation-DAG lanes
// only. Detector-registered queries never adapt (their plan is opaque).
//
// Zero values select the defaults noted per field.
type AdaptiveSessionConfig struct {
	// CheckEvery is the number of submitted events between drift checks
	// (default 2048). A check re-prices every shared component's running
	// trees under the collector's current measurements and compares with a
	// fresh replan.
	CheckEvery int
	// Threshold is the minimum drift score — cost.DriftScore(running plan
	// re-priced fresh, fresh replan) — a check must report before it counts
	// toward a trigger (default 0.25, i.e. the running plan is modeled 25%
	// more expensive than a replan).
	Threshold float64
	// Hysteresis is the number of consecutive over-threshold checks required
	// before a component is re-optimized (default 2): a noisy but stationary
	// stream never flaps between plans.
	Hysteresis int
	// MinInterval is the minimum number of events between re-optimizations
	// of one component lineage (default 4×CheckEvery).
	MinInterval int
	// MaxPerCheck bounds how many components one check may re-optimize
	// (default 1); the rest stay triggered and go first at the next check.
	MaxPerCheck int
	// MaxReopts caps the total number of drift re-optimizations over the
	// session's lifetime; 0 means unlimited — the re-optimization budget.
	MaxReopts int
	// WarmupEvents suppresses triggers until this many events were observed
	// (default 2×CheckEvery). The collector additionally requires one full
	// estimation window of data before it reports ready.
	WarmupEvents int
	// Window is the sliding estimation window of the statistics collector;
	// default 4× the largest registered pattern window.
	Window Time
}

func (c AdaptiveSessionConfig) withDefaults() AdaptiveSessionConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 2048
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 4 * c.CheckEvery
	}
	if c.MaxPerCheck <= 0 {
		c.MaxPerCheck = 1
	}
	if c.WarmupEvents <= 0 {
		c.WarmupEvents = 2 * c.CheckEvery
	}
	return c
}

// defaultEstimationWindow is the collector window when no registered query
// exposes a pattern window to derive one from.
const defaultEstimationWindow = 8 * Second

// sessionAdapt is the session's adaptivity state: the shared statistics
// collector (also serving the private-lane controllers and the StatsPath
// persistence), the drift detector, and the check bookkeeping. The
// collector is concurrency-safe; everything else is guarded by Session.mu.
type sessionAdapt struct {
	enabled   bool // Adaptive was configured (vs StatsPath-only collection)
	cfg       AdaptiveSessionConfig
	statsPath string
	seed      *Stats // loaded from statsPath, nil when absent
	loadErr   error

	col *drift.Collector
	det *drift.Detector

	counter  atomic.Int64 // events observed since Start
	checking atomic.Bool  // at most one drift check in flight
	checks   int64        // drift checks performed (under mu)
	reopts   int64        // drift-triggered re-optimizations (under mu)
	// selCache carries selectivity estimates across checks, refreshed every
	// selRefreshEvery checks (under mu).
	selCache map[string]selEstimate

	// Rate-screen state, touched only by the goroutine that currently owns
	// `checking` (at most one check in flight), so it needs no lock.
	// lastRates is the per-type rate snapshot taken at the most recent full
	// check; curRates is the reused scratch map for the comparison.
	lastRates   map[string]float64
	curRates    map[string]float64
	screenTick  int64
	screenArmed bool // a component was over threshold at the last full check
}

// newSessionAdapt builds the adaptivity state at NewSession time: the
// configuration is resolved and the statistics seed (if any) loaded; the
// collector itself waits until Start, when the registered patterns fix the
// estimation window.
func newSessionAdapt(cfg SessionConfig) *sessionAdapt {
	if cfg.Adaptive == nil && cfg.StatsPath == "" {
		return nil
	}
	a := &sessionAdapt{statsPath: cfg.StatsPath}
	if cfg.Adaptive != nil {
		a.enabled = true
		a.cfg = cfg.Adaptive.withDefaults()
	}
	if a.statsPath != "" {
		f, err := os.Open(a.statsPath)
		switch {
		case os.IsNotExist(err):
			// First run: plan from per-query stats (or neutral priors).
		case err != nil:
			a.loadErr = fmt.Errorf("cep: session stats: %w", err)
		default:
			st, lerr := LoadStats(f)
			f.Close()
			if lerr != nil {
				a.loadErr = fmt.Errorf("cep: session stats %q: %w", a.statsPath, lerr)
			} else {
				a.seed = st
			}
		}
	}
	return a
}

// initLocked creates the collector (and, when adaptivity is enabled, the
// detector) once the query set is known. The caller holds mu.
func (s *Session) initAdaptLocked() {
	a := s.adapt
	if a == nil || a.col != nil {
		return
	}
	window := a.cfg.Window
	if window <= 0 {
		for _, q := range s.queries {
			if q.rt != nil && 4*q.rt.pattern.Window > window {
				window = 4 * q.rt.pattern.Window
			}
		}
		if window <= 0 {
			window = defaultEstimationWindow
		}
	}
	var warmup int64
	if a.enabled {
		warmup = int64(a.cfg.WarmupEvents)
	}
	a.col = drift.NewCollector(window, warmup)
	if a.enabled {
		a.det = drift.NewDetector(drift.Config{
			Threshold:   a.cfg.Threshold,
			Hysteresis:  a.cfg.Hysteresis,
			MinInterval: int64(a.cfg.MinInterval),
			Warmup:      int64(a.cfg.WarmupEvents),
			Budget:      int64(a.cfg.MaxReopts),
		})
	}
}

// observeAdapt feeds one submitted event to the collector and runs a drift
// check every CheckEvery events. It is called on the submitter's goroutine
// after the broadcast, outside every session lock.
func (s *Session) observeAdapt(e *Event) {
	a := s.adapt
	if a == nil || a.col == nil {
		return
	}
	a.col.Observe(e)
	if !a.enabled {
		return
	}
	n := a.counter.Add(1)
	if n%int64(a.cfg.CheckEvery) != 0 {
		return
	}
	if !a.checking.CompareAndSwap(false, true) {
		return
	}
	defer a.checking.Store(false)
	s.adaptCheck(n)
}

// rateScreenBand is the per-type rate ratio beyond which the cheap drift
// screen escalates to a full check. Windowed rate estimates on a stationary
// stream wobble by a few percent; a 1.2x move is far outside that noise yet
// far inside any shift worth re-planning for (the scenario shifts are 10x+).
const rateScreenBand = 1.2

// ratesMoved reports whether any type's rate moved beyond rateScreenBand
// between the two snapshots. A type present only in cur (first arrivals of
// a new type) always counts as moved; the collector's type set never
// shrinks, so cur covers every key of old.
func ratesMoved(old, cur map[string]float64) bool {
	for typ, r := range cur {
		o := old[typ]
		if o == 0 || r == 0 {
			if o != r {
				return true
			}
			continue
		}
		if ratio := r / o; ratio > rateScreenBand || ratio*rateScreenBand < 1 {
			return true
		}
	}
	return false
}

// observeBatchAdapt is observeAdapt for a whole submitted batch: one
// ObserveBatch call into the collector and one counter advance, with at
// most one drift check per batch however many CheckEvery boundaries the
// batch crossed.
func (s *Session) observeBatchAdapt(evs []*Event) {
	a := s.adapt
	if a == nil || a.col == nil || len(evs) == 0 {
		return
	}
	a.col.ObserveBatch(evs)
	if !a.enabled {
		return
	}
	n := a.counter.Add(int64(len(evs)))
	every := int64(a.cfg.CheckEvery)
	if n/every == (n-int64(len(evs)))/every {
		return
	}
	if !a.checking.CompareAndSwap(false, true) {
		return
	}
	defer a.checking.Store(false)
	s.adaptCheck(n)
}

// adaptCheck is one drift check: every live sharing component's running
// trees are re-priced under the collector's current measurements and
// compared against a fresh replan; components whose drift score clears the
// detector's hysteresis are re-optimized, most-drifted first, at most
// MaxPerCheck per check.
func (s *Session) adaptCheck(pos int64) {
	a := s.adapt
	if !a.col.Ready() {
		return
	}
	// Rate screen: a full check re-prices every live component's trees and
	// generates a fresh candidate plan — planner work that is pure waste on
	// a stationary stream. The detector's score is driven entirely by the
	// collector's measurements, so when no type's windowed rate has moved
	// beyond rateScreenBand since the last full check the answer is known
	// cheaply. Every selRefreshEvery-th check runs in full regardless (so
	// drift visible only in selectivities — steady rates, changed
	// correlations — is still caught, at a coarser cadence), and screening
	// disengages entirely while any component sits over threshold, so the
	// hysteresis count never stalls between a shift and its splice.
	a.screenTick++
	full := a.screenArmed || a.lastRates == nil || (a.screenTick-1)%selRefreshEvery == 0
	if !full {
		a.curRates = a.col.Rates(a.curRates)
		full = ratesMoved(a.lastRates, a.curRates)
	}
	if !full {
		s.mu.Lock()
		if s.started && !s.closed {
			a.checks++
		}
		s.mu.Unlock()
		return
	}
	a.lastRates = a.col.Rates(a.lastRates)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return
	}
	a.checks++

	comps, order := s.liveComponentsLocked()
	live := make(map[int]bool, len(comps))
	for id := range comps {
		live[id] = true
	}
	a.det.Retain(live)

	type candidate struct {
		comp  int
		score float64
	}
	var cands []candidate
	if a.selCache == nil || (a.screenTick-1)%selRefreshEvery == 0 {
		a.selCache = map[string]selEstimate{}
	}
	snap := newSnapCache(a.col, a.selCache)
	armed := false
	for _, id := range order {
		stale, freshCost, ok := s.compCostsLocked(comps[id], snap)
		if !ok {
			continue
		}
		dec := a.det.Check(id, stale, freshCost, pos)
		armed = armed || dec.Consecutive > 0
		if dec.Trigger {
			cands = append(cands, candidate{comp: id, score: dec.Score})
		}
	}
	a.screenArmed = armed
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].comp < cands[j].comp
	})
	if len(cands) > a.cfg.MaxPerCheck {
		cands = cands[:a.cfg.MaxPerCheck]
	}
	for _, cd := range cands {
		// Re-check the budget per splice: the Check calls above all saw the
		// pre-check total, but each splice spends from it.
		if a.cfg.MaxReopts > 0 && a.det.Reopts() >= int64(a.cfg.MaxReopts) {
			break
		}
		if len(s.componentLanesLocked(cd.comp)) == 0 {
			continue // pulled in (and retired) by an earlier re-opt of this check
		}
		if err := s.driftReoptLocked(cd.comp, snap, pos, cd.score); err != nil {
			s.pool.RecordErr(fmt.Errorf("cep: drift re-optimization: %w", err))
			return
		}
	}
}

// liveComponentsLocked groups the live evaluation-DAG lanes by sharing
// component, returning the component ids in ascending order. The caller
// holds mu.
func (s *Session) liveComponentsLocked() (map[int][]*sessionLane, []int) {
	comps := map[int][]*sessionLane{}
	var order []int
	for _, l := range *s.laneTab.Load() {
		if l.retired || l.eng == nil {
			continue
		}
		if _, ok := comps[l.comp]; !ok {
			order = append(order, l.comp)
		}
		comps[l.comp] = append(comps[l.comp], l)
	}
	sort.Ints(order)
	return comps, order
}

// selRefreshEvery is the number of drift checks between selectivity
// re-estimations. Rates — the primary drift signal, and cheap to read —
// refresh every check; the reservoir-sampled selectivities (the expensive
// part of a check) are carried across checks and refreshed every Nth, so
// a stationary stream pays almost nothing for monitoring while rate-drift
// detection latency is unaffected.
const selRefreshEvery = 4

// selEstimate is one cached selectivity measurement.
type selEstimate struct {
	v  float64
	ok bool
}

// snapCache amortizes statistics reads across the checked components: the
// rate table is snapshotted once per check, and each pairwise selectivity
// is evaluated once per (condition, resolved types) — shared across
// queries with the same predicate shape and, via the session-held cache,
// across checks until the next refresh.
type snapCache struct {
	col   *drift.Collector
	rates *Stats
	sel   map[string]selEstimate
}

func newSnapCache(col *drift.Collector, sel map[string]selEstimate) *snapCache {
	return &snapCache{col: col, rates: col.Snapshot(nil, nil), sel: sel}
}

// statsFor assembles fresh Stats for one query: the shared rate table plus
// memoized selectivities of the query's conditions.
func (sc *snapCache) statsFor(q *sessionQuery) *Stats {
	st := stats.New()
	st.Rates = sc.rates.Rates // read-only share of the per-check snapshot
	alias := stats.AliasTypes(q.rt.pattern)
	for _, c := range q.rt.pattern.Conds {
		key := c.String()
		for _, al := range c.Aliases() {
			key += "|" + alias[al]
		}
		r, hit := sc.sel[key]
		if !hit {
			r.v, r.ok = sc.col.Selectivity(c, alias)
			sc.sel[key] = r
		}
		if r.ok {
			st.SetSelectivity(c, r.v)
		}
	}
	return st
}

// compCostsLocked prices one component under the collector's current
// measurements. Both sides are evaluated with the optimizer's own
// shared-plan objective (mqo.SharedTreeCost — distinct sub-joins paid
// once, fan-out term per extra consumer): stale prices the members'
// RUNNING trees (the possibly-restructured shapes actually evaluated),
// fresh prices freshly replanned private-optimal trees. Pricing the stale
// side share-aware is what keeps a stationary stream from flapping: the
// per-tree inflation the optimizer accepted for a sharing win is exactly
// offset by the sharing discount, and since the optimizer only ever
// improves this objective over the private-optimal starting point, the
// post-re-optimization score under unchanged statistics is ≤ 0. ok is
// false when any member cannot be priced (no runtime config, or the
// pattern's statistics shape changed).
func (s *Session) compCostsLocked(lanes []*sessionLane, snap *snapCache) (stale, fresh float64, ok bool) {
	var staleItems, freshItems []mqo.TreePrice
	priced := map[string]bool{}
	for _, l := range lanes {
		for name, q := range l.members {
			if priced[name] {
				continue // partition siblings repeat the member set
			}
			priced[name] = true
			if q.rt == nil || q.qc == nil {
				return 0, 0, false
			}
			fs := snap.statsFor(q)
			sp := q.rt.plan.Simple[0]
			ps := stats.For(sp.Compiled.Source, fs)
			if ps.N() != sp.Stats.N() {
				return 0, 0, false
			}
			cur := l.info.trees[name]
			if cur == nil {
				if cur = sp.Tree; cur == nil {
					cur = plan.LeftDeep(sp.Order)
				}
			}
			// The fresh side only needs a cost anchor, not an executable
			// plan: the ZStream topology search over the fresh statistics is
			// the cheap stand-in for a full replan (no pattern compilation);
			// the actual re-optimization re-plans with the query's own
			// configured planner.
			ft := core.ZStreamOrd{}.Tree(ps, cost.DefaultModel())
			if ft == nil {
				return 0, 0, false
			}
			price := mqo.TreePrice{Sigs: q.mqoSigs(), PS: ps}
			price.Tree = cur
			staleItems = append(staleItems, price)
			price.Tree = ft
			freshItems = append(freshItems, price)
		}
	}
	return mqo.SharedTreeCost(staleItems, 0), mqo.SharedTreeCost(freshItems, 0), true
}

// driftReoptLocked re-optimizes one drifted component. The affected lane
// set is widened to every lane that could share a sub-join with a member
// (so a newly profitable common sub-join can form across what were
// separate lanes), then EVERY member of every affected lane is re-planned
// under the fresh measurements — one statistics epoch for the whole
// re-optimization, so the sharing decision never prices one side of a
// candidate sub-join at registration-time rates — and the standard churn
// splice rebuilds the sharing structure with full state adoption. The
// caller holds mu. score is the measured drift score that triggered the
// re-optimization; it lands in the journal entry so operators can audit how
// far past Threshold each splice actually was.
func (s *Session) driftReoptLocked(comp int, snap *snapCache, pos int64, score float64) error {
	a := s.adapt
	lanes := s.componentLanesLocked(comp)
	if len(lanes) == 0 {
		return nil
	}

	// Affected set: the component itself plus every lane whose members could
	// share a sub-join with it under any canonical key.
	var memberKeys []string
	for _, l := range lanes {
		for _, q := range l.members {
			memberKeys = append(memberKeys, q.shareKeys...)
		}
	}
	affected := s.affectedLanesLocked(memberKeys)
	inSet := make(map[*sessionLane]bool, len(affected))
	for _, l := range affected {
		inSet[l] = true
	}
	for _, l := range lanes {
		if !inSet[l] {
			affected = append(affected, l)
		}
	}

	// Re-plan every affected member under the measurements (all fallible
	// work before the first mutation).
	type swapIn struct {
		q  *sessionQuery
		rt *Runtime
		qc *QueryConfig
	}
	var swaps []swapIn
	planned := map[string]bool{}
	for _, l := range affected {
		for _, q := range l.members {
			if planned[q.name] {
				continue // partition siblings repeat the member set
			}
			planned[q.name] = true
			if q.qc == nil {
				return fmt.Errorf("query %q: no declarative config", q.name)
			}
			rtCfg := *q.qc
			rtCfg.Stats = snap.statsFor(q)
			nrt, err := NewFromConfig(rtCfg)
			if err != nil {
				return fmt.Errorf("query %q: %w", q.name, err)
			}
			swaps = append(swaps, swapIn{q: q, rt: nrt, qc: &rtCfg})
		}
	}
	oldComps := map[int]bool{}
	for _, l := range affected {
		oldComps[l.comp] = true
	}

	// Quiesce just the affected lanes and splice.
	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	idxs := make([]int, len(affected))
	for i, l := range affected {
		idxs[i] = l.idx
	}
	if err := sessErr(s.pool.DrainLanes(idxs)); err != nil {
		return err
	}
	for _, sw := range swaps {
		sw.q.rt.Close()
		sw.q.rt = sw.rt
		sw.q.det = sw.rt
		sw.q.qc = sw.qc
		sw.q.sigs = nil // fresh plan, fresh canonical-signature cache
	}
	var input []mqo.Query
	inInput := map[string]bool{}
	for _, l := range affected {
		for _, m := range l.members {
			if !inInput[m.name] {
				inInput[m.name] = true
				input = append(input, mqoQuery(m))
			}
		}
	}
	nextBefore := s.nextComp
	if err := s.applySpliceLocked(affected, input); err != nil {
		return err
	}
	var old, fresh []int
	for id := range oldComps {
		old = append(old, id)
	}
	for id := nextBefore; id < s.nextComp; id++ {
		fresh = append(fresh, id)
	}
	a.det.Spliced(old, fresh, pos)
	a.reopts++
	s.tel.recordKV(s.seq.Load(), "drift_reopt",
		kv("comp", comp), kv("lanes", len(affected)), kv("pos", pos),
		kv("score", fmt.Sprintf("%.4f", score)))
	return nil
}

// wrapPrivateAdaptive replaces a private lane's static runtime with a
// re-optimizing controller fed from the session's shared collector, so
// Session-managed private queries adapt to drift too. Engine state is
// swapped (not spliced) on a private replan: in-flight partial matches at
// the swap are discarded, matching the standalone AdaptiveRuntime
// semantics. No-op when adaptivity is off or the query has no declarative
// config (RegisterDetector).
func (s *Session) wrapPrivateAdaptive(q *sessionQuery) error {
	a := s.adapt
	if a == nil || !a.enabled || q.qc == nil || q.rt == nil {
		return nil
	}
	alg := q.qc.Algorithm
	if alg == "" {
		alg = AlgGreedy
	}
	ctrl, err := adaptive.New(q.rt.pattern, q.qc.Stats, adaptive.Config{
		Planner:       &core.Planner{Algorithm: alg, Strategy: q.qc.Strategy, Alpha: q.qc.LatencyWeight},
		InitialPlan:   q.rt.plan, // planQuery already planned it; don't plan twice
		Source:        a.col,
		CheckEvery:    a.cfg.CheckEvery,
		Threshold:     a.cfg.Threshold,
		WarmupEvents:  a.cfg.WarmupEvents,
		MaxKleeneBase: q.qc.MaxKleeneBase,
	})
	if err != nil {
		return fmt.Errorf("cep: query %q: adaptive wrap: %w", q.name, err)
	}
	q.rt.Close()
	q.det = &AdaptiveRuntime{ctrl: ctrl}
	return nil
}

// measuredStatsLocked folds the collector's current measurements over the
// persisted seed: rates for every observed type, selectivities for every
// registered query's conditions. The caller holds mu.
func (s *Session) measuredStatsLocked() *Stats {
	a := s.adapt
	out := stats.New()
	if a.seed != nil {
		out.DefaultRate = a.seed.DefaultRate
		out.DefaultSel = a.seed.DefaultSel
		out.Merge(a.seed)
	}
	meas := a.col.Snapshot(nil, nil)
	for _, q := range s.queries {
		if q.rt == nil {
			continue
		}
		alias := stats.AliasTypes(q.rt.pattern)
		for _, c := range q.rt.pattern.Conds {
			if sel, ok := a.col.Selectivity(c, alias); ok {
				meas.SetSelectivity(c, sel)
			}
		}
	}
	out.Merge(meas)
	return out
}

// StatsSnapshot returns the statistics measured by the session so far —
// arrival rates over the estimation window plus the registered queries'
// predicate selectivities — overlaid on the StatsPath seed. It returns nil
// when the session collects no statistics (neither SessionConfig.Adaptive
// nor StatsPath configured) or has not started.
func (s *Session) StatsSnapshot() *Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adapt == nil || s.adapt.col == nil {
		return nil
	}
	return s.measuredStatsLocked()
}

// saveStats persists the measured statistics to StatsPath (write to a
// temporary file, then rename). Called from shutdown; a session that never
// observed an event keeps the previous file.
func (s *Session) saveStats() error {
	a := s.adapt
	if a == nil || a.statsPath == "" || a.col == nil || a.col.Events() == 0 {
		return nil
	}
	s.mu.Lock()
	st := s.measuredStatsLocked()
	s.mu.Unlock()
	tmp := a.statsPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cep: session stats: %w", err)
	}
	if err := st.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cep: session stats: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cep: session stats: %w", err)
	}
	if err := os.Rename(tmp, a.statsPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cep: session stats: %w", err)
	}
	return nil
}

// DriftReport summarizes the session's drift-adaptivity activity: collector
// coverage, checks and re-optimizations performed, and the per-component
// drift state at the last check. Private adaptive lanes (whose controllers
// replan independently) are reported only after the session has shut down,
// when their worker-owned counters are safe to read.
type DriftReport struct {
	// Events is the number of events the collector has observed.
	Events int64
	// Checks counts the drift checks performed; Reopts the drift-triggered
	// re-optimizations (a subset of Generation, which also counts query
	// churn).
	Checks int64
	Reopts int64
	// Generation is the session's total re-optimization count (shared with
	// ShareReport.Generation).
	Generation int
	// Components describes each live sharing component's drift state.
	Components []DriftComponentReport
	// Private lists the private adaptive lanes' replan counters; populated
	// only after Flush or Close.
	Private []PrivateAdaptiveReport
}

// DriftComponentReport is one sharing component's drift state as of the
// last check.
type DriftComponentReport struct {
	// Members are the component's query names, sorted.
	Members []string
	// Score is the last measured drift score (stale/fresh − 1); StaleCost
	// and FreshCost are the costs behind it.
	Score     float64
	StaleCost float64
	FreshCost float64
	// Consecutive counts the over-threshold checks in a row.
	Consecutive int
	// Reopts counts the drift re-optimizations of this component's lineage;
	// LastReoptPos is the stream position (submitted events) of the latest.
	Reopts       int
	LastReoptPos int64
	// Rates is the measured arrival-rate snapshot of the member queries'
	// event types.
	Rates map[string]float64
}

// PrivateAdaptiveReport is one private adaptive lane's activity.
type PrivateAdaptiveReport struct {
	Query   string
	Replans int64
	Checks  int64
}

// DriftReport returns a snapshot of the drift-adaptivity state, or nil when
// SessionConfig.Adaptive is not configured or the session has not started.
func (s *Session) DriftReport() *DriftReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.adapt
	if a == nil || !a.enabled || a.col == nil {
		return nil
	}
	rep := &DriftReport{
		Events:     a.col.Events(),
		Checks:     a.checks,
		Reopts:     a.reopts,
		Generation: s.reoptGen,
	}
	comps, order := s.liveComponentsLocked()
	for _, id := range order {
		cr := DriftComponentReport{Rates: map[string]float64{}}
		for _, l := range comps[id] {
			for name, q := range l.members {
				cr.Members = append(cr.Members, name)
				if q.rt != nil {
					for _, typ := range q.rt.plan.Simple[0].Stats.Types {
						cr.Rates[typ] = a.col.Rate(typ)
					}
				}
			}
		}
		sort.Strings(cr.Members)
		if st, ok := a.det.Peek(id); ok {
			cr.Score = st.Score
			cr.StaleCost = st.StaleCost
			cr.FreshCost = st.FreshCost
			cr.Consecutive = st.Consecutive
			cr.Reopts = st.Reopts
			cr.LastReoptPos = st.LastReoptPos
		}
		rep.Components = append(rep.Components, cr)
	}
	if s.pool.Joined() {
		for _, q := range s.queries {
			if ar, ok := q.det.(*AdaptiveRuntime); ok && q.qc != nil {
				st := ar.ctrl.Stats()
				rep.Private = append(rep.Private, PrivateAdaptiveReport{
					Query: q.name, Replans: st.Replans, Checks: st.Checks,
				})
			}
		}
	}
	return rep
}
