package cep

import (
	"io"

	"repro/internal/ingest"
	"repro/internal/stats"
)

// CSVOptions configures ReadCSV; see the field documentation in
// internal/ingest. Zero values select the "type"/"ts" column conventions.
type CSVOptions = ingest.CSVOptions

// ReadCSV ingests a headered CSV stream of events validated against the
// registry: one row per event, a type column, a millisecond timestamp
// column, and one column per schema attribute.
func ReadCSV(r io.Reader, reg *Registry, opts CSVOptions) ([]*Event, error) {
	return ingest.ReadCSV(r, reg, opts)
}

// ReadJSONL ingests newline-delimited JSON events:
// {"type":"Stock","ts":1000,"attrs":{"price":99.5}}.
func ReadJSONL(r io.Reader, reg *Registry) ([]*Event, error) {
	return ingest.ReadJSONL(r, reg)
}

// WriteJSONL renders events in the ReadJSONL wire format.
func WriteJSONL(w io.Writer, events []*Event) error {
	return ingest.WriteJSONL(w, events)
}

// AssignPartitions partitions an unpartitioned feed by hashing the named
// attribute onto [0, parts): events agreeing on the key land in the same
// partition, making the feed consumable by PartitionedRuntime and
// ShardedRuntime without losing matches over that key. The slice is
// restamped in place and returned.
func AssignPartitions(events []*Event, attr string, parts int) ([]*Event, error) {
	return ingest.AssignPartitions(events, attr, parts)
}

// SourceFunc adapts a plain pull function to an EventSource, so a custom
// feed (a socket reader, a Kafka consumer, a generator) can be streamed
// through Session.Run or Runtime.ProcessStream without a named type. The
// function must return timestamp-ordered events and nil at end of stream.
type SourceFunc func() *Event

// Next pulls the next event.
func (f SourceFunc) Next() *Event { return f() }

// SaveStats persists measured statistics as JSON so an expensive offline
// measurement pass can be reused across runs.
func SaveStats(w io.Writer, s *Stats) error { return s.Save(w) }

// LoadStats reads statistics previously written by SaveStats.
func LoadStats(r io.Reader) (*Stats, error) { return stats.Load(r) }
