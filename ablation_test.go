package cep

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Section 5.3 early negation placement, the Kleene base cap, and reordering
// itself (planned vs trivial orders).

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/workload"
)

// negationWorkload builds a negation-heavy pattern and stream.
func negationWorkload(b *testing.B) (*predicate.Compiled, []*event.Event, []int) {
	b.Helper()
	stocks := workload.NewStocks(workload.StockConfig{Symbols: 8, Events: 6000, Seed: 5, MinRate: 1, MaxRate: 5})
	events := stocks.Generate()
	p := pattern.Seq(2*event.Second,
		pattern.E(stocks.Symbols[0], "a"),
		pattern.Not(stocks.Symbols[1], "n"),
		pattern.E(stocks.Symbols[2], "c"),
		pattern.E(stocks.Symbols[3], "d"),
	)
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		b.Fatal(err)
	}
	return c, events, []int{0, 2, 3}
}

// BenchmarkAblationEarlyNegation measures the Section 5.3 early check
// against deferring every negation to completion.
func BenchmarkAblationEarlyNegation(b *testing.B) {
	c, events, order := negationWorkload(b)
	run := func(b *testing.B, disable bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			e, err := nfa.New(c, order, nfa.Config{DisableEarlyNegation: disable})
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range events {
				e.Process(ev)
			}
			e.Flush()
		}
		b.SetBytes(int64(len(events)))
	}
	b.Run("early", func(b *testing.B) { run(b, false) })
	b.Run("at-completion", func(b *testing.B) { run(b, true) })
}

// TestEarlyNegationAblationEquivalent proves the flag changes performance
// only, never the match set.
func TestEarlyNegationAblationEquivalent(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{Symbols: 8, Events: 3000, Seed: 6, MinRate: 1, MaxRate: 5})
	events := stocks.Generate()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		p := stocks.Pattern(workload.CatNegation, 4, 2*event.Second, rng)
		c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
		if err != nil {
			t.Fatal(err)
		}
		run := func(disable bool) []*match.Match {
			e, err := nfa.New(c, c.Positives, nfa.Config{DisableEarlyNegation: disable})
			if err != nil {
				t.Fatal(err)
			}
			var out []*match.Match
			for _, ev := range events {
				out = append(out, append([]*match.Match(nil), e.Process(ev)...)...)
			}
			return append(out, e.Flush()...)
		}
		early := run(false)
		late := run(true)
		extra, missing := match.Diff(early, late)
		if len(extra) != 0 || len(missing) != 0 {
			t.Fatalf("ablation changed semantics: extra=%v missing=%v (%s)", extra, missing, p)
		}
	}
}

// BenchmarkAblationPlannedVsTrivial quantifies what plan generation buys on
// the four-cameras scenario: the same engine run under the trivial and the
// DP-optimal order.
func BenchmarkAblationPlannedVsTrivial(b *testing.B) {
	r := benchHarness()
	p := r.Stocks.Pattern(workload.CatConjunction, 5, r.Cfg.Window, benchRng())
	for _, alg := range []string{core.AlgTrivial, core.AlgDPLD} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKleeneCap sweeps the Kleene base cap, the knob bounding
// Theorem 4's power-set blow-up.
func BenchmarkAblationKleeneCap(b *testing.B) {
	stocks := workload.NewStocks(workload.StockConfig{Symbols: 8, Events: 4000, Seed: 7, MinRate: 1, MaxRate: 3})
	events := stocks.Generate()
	p := pattern.Seq(event.Second,
		pattern.E(stocks.Symbols[0], "a"),
		pattern.KL(stocks.Symbols[1], "k"),
	)
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{2, 6, 10} {
		b.Run(map[int]string{2: "cap2", 6: "cap6", 10: "cap10"}[cap], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := nfa.New(c, c.Positives, nfa.Config{MaxKleeneBase: cap})
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range events {
					e.Process(ev)
				}
				e.Flush()
			}
			b.SetBytes(int64(len(events)))
		})
	}
}
