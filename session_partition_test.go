package cep

import (
	"sort"
	"testing"
)

// TestPartitionReportShape pins the observable shape of a key-partitioned
// session: ShareReport's component rows must carry the partition count, the
// derived key attribute and one LaneQueues row per hash bucket, and
// Session.Metrics() must label every shared lane with its partition id
// while private lanes stay at -1. The report is API surface — dashboards
// key off these fields — so the shape is asserted exactly, not loosely.
func TestPartitionReportShape(t *testing.T) {
	history := regimeShiftStream(3, map[string]float64{"A": 2, "B": 2, "T1": 4, "T2": 4},
		nil, 120*Second, 0)
	queries := keyedTailQueries(t, history, 2)

	s := NewSession(SessionConfig{ShareSubplans: true, PartitionWorkers: 3})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	// A lone single-positive query shares with nobody: it lands on a
	// singleton shared lane that must stay unpartitioned (-1/0).
	soloP := Seq(Second, E("A", "a")).Where(Cmp(Ref("a", "x"), Ge, Const(0)))
	if err := s.Register(QueryConfig{Name: "solo", Pattern: soloP, Stats: Measure(history, soloP)}); err != nil {
		t.Fatal(err)
	}
	// A Kleene query is sharing-ineligible: it runs on a private lane,
	// which must also report Partition -1.
	pvtP := Seq(2*Second, E("A", "a"), KL("B", "b"))
	if err := s.Register(QueryConfig{Name: "pvt", Pattern: pvtP, Stats: Measure(history, pvtP)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep := s.ShareReport()
	if rep == nil {
		t.Fatal("nil ShareReport on a started sharing session")
	}
	if len(rep.Components) != 1 {
		t.Fatalf("want 1 sharing component, got %d", len(rep.Components))
	}
	comp := rep.Components[0]
	if got, want := comp.Members, []string{"kq0", "kq1"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("component members = %v, want %v", got, want)
	}
	if comp.Partitions != 3 {
		t.Fatalf("component Partitions = %d, want 3", comp.Partitions)
	}
	if comp.PartitionAttr != "x" {
		t.Fatalf("component PartitionAttr = %q, want \"x\"", comp.PartitionAttr)
	}
	if comp.Lanes != 3 {
		t.Fatalf("component Lanes = %d, want 3", comp.Lanes)
	}
	if len(comp.LaneQueues) != 3 {
		t.Fatalf("component LaneQueues has %d rows, want 3", len(comp.LaneQueues))
	}
	parts := make([]int, 0, 3)
	for _, lq := range comp.LaneQueues {
		parts = append(parts, lq.Partition)
		if lq.Capacity <= 0 {
			t.Fatalf("lane %d reports capacity %d, want > 0", lq.Lane, lq.Capacity)
		}
		if lq.Depth < 0 || lq.Depth > lq.Capacity {
			t.Fatalf("lane %d reports depth %d outside [0, %d]", lq.Lane, lq.Depth, lq.Capacity)
		}
	}
	sort.Ints(parts)
	for i, p := range parts {
		if p != i {
			t.Fatalf("LaneQueues partitions = %v, want {0, 1, 2}", parts)
		}
	}

	m := s.Metrics()
	sharedParts := make([]int, 0, 3)
	sawPrivate := false
	for _, q := range m.Queues {
		if q.Kind == "shared" && len(q.Members) == 2 {
			// A lane of the partitioned kq0+kq1 family.
			if q.Partitions != 3 {
				t.Fatalf("family lane %d: Partitions = %d, want 3", q.Lane, q.Partitions)
			}
			sharedParts = append(sharedParts, q.Partition)
			continue
		}
		// Singleton shared lane (solo) and private lane (pvt) alike must
		// stay unpartitioned.
		if q.Partition != -1 || q.Partitions != 0 {
			t.Fatalf("%s lane %d (%v): Partition/Partitions = %d/%d, want -1/0",
				q.Kind, q.Lane, q.Members, q.Partition, q.Partitions)
		}
		if q.Kind == "private" {
			sawPrivate = true
		}
	}
	sort.Ints(sharedParts)
	if len(sharedParts) != 3 || sharedParts[0] != 0 || sharedParts[1] != 1 || sharedParts[2] != 2 {
		t.Fatalf("Metrics family-lane partitions = %v, want {0, 1, 2}", sharedParts)
	}
	if !sawPrivate {
		t.Fatal("expected the Kleene query to occupy a private lane")
	}
}
