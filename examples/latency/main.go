// Latency: the throughput/latency trade-off of Section 6.1. The hybrid cost
// model Cost_trpt + α·Cost_lat moves the temporally last event earlier or
// later in the plan; this example sweeps α and reports how the plan, its
// predicted latency, and its predicted throughput cost change.
package main

import (
	"fmt"
	"log"

	cep "repro"
)

func main() {
	p, err := cep.ParsePattern(`
		PATTERN SEQ(Sensor s, Heartbeat h, Alarm a)
		WHERE s.zone = h.zone AND h.zone = a.zone
		WITHIN 30 s`)
	if err != nil {
		log.Fatal(err)
	}

	// Hand-set statistics: heartbeats flood the stream, alarms are rare,
	// and the zone predicates are selective.
	st := cep.NewStats()
	st.SetRate("Sensor", 20)
	st.SetRate("Heartbeat", 200)
	st.SetRate("Alarm", 0.05)
	st.SetSelectivity(cep.AttrCmp("s", "zone", cep.Eq, "h", "zone"), 0.02)
	st.SetSelectivity(cep.AttrCmp("h", "zone", cep.Eq, "a", "zone"), 0.02)

	fmt.Println("alpha sweep for SEQ(Sensor, Heartbeat, Alarm), Alarm arrives last:")
	fmt.Println()
	for _, alpha := range []float64{0, 0.05, 0.5, 5, 1e6} {
		rt, err := cep.New(p, st,
			cep.WithAlgorithm(cep.AlgDPLD),
			cep.WithLatencyWeight(alpha),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha=%-8g plan cost %14.1f\n  %s", alpha, rt.PlanCost(), rt.Describe())
	}
	fmt.Println(`with alpha=0 the optimizer buffers everything and waits for the rare Alarm;
as alpha grows, the Alarm moves to the end of the plan so a match is
reported the instant it arrives — at the price of more live partial matches.`)
}
