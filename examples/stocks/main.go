// Stocks: the paper's evaluation scenario — monitoring relative changes in
// stock prices (Section 7.2). A synthetic tick stream stands in for the
// NASDAQ feed; the pattern watches for a chain of correlated moves and the
// example compares the plans chosen by a native CEP heuristic and by the
// adapted join-query optimizers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cep "repro"
)

// genTicks produces a merged, timestamp-ordered tick stream for the given
// symbols with per-symbol arrival rates (events/second) and random-walk
// prices; the "difference" attribute carries the price change, as the
// paper's preprocessing adds.
func genTicks(schemas map[string]*cep.Schema, rates map[string]float64, seconds float64, seed int64) []*cep.Event {
	rng := rand.New(rand.NewSource(seed))
	var all []*cep.Event
	for sym, schema := range schemas {
		price := 100.0
		t := 0.0
		for {
			t += rng.ExpFloat64() / rates[sym]
			if t > seconds {
				break
			}
			step := rng.NormFloat64()
			price += step
			all = append(all, cep.NewEvent(schema, cep.Time(t*1000), price, step))
		}
	}
	// Order by timestamp and stamp serials.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].TS < all[j-1].TS; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return cep.Stamp(all)
}

func main() {
	symbols := []string{"MSFT", "GOOG", "INTC", "AAPL"}
	rates := map[string]float64{"MSFT": 8, "GOOG": 6, "INTC": 4, "AAPL": 0.4}
	schemas := make(map[string]*cep.Schema, len(symbols))
	for _, s := range symbols {
		schemas[s] = cep.NewSchema(s, "price", "difference")
	}
	ticks := genTicks(schemas, rates, 120, 42)
	fmt.Printf("generated %d ticks over 120 s\n\n", len(ticks))

	// The paper's §7.2 pattern shape: examine Intel's move when Google's
	// change exceeds Microsoft's, in the rare context of an Apple tick.
	p, err := cep.ParsePattern(`
		PATTERN AND(MSFT m, GOOG g, INTC i, AAPL aa)
		WHERE m.difference < g.difference AND i.difference < g.difference
		      AND g.difference > 1.5
		WITHIN 2 s`)
	if err != nil {
		log.Fatal(err)
	}
	st := cep.Measure(ticks, p)
	fmt.Printf("measured rates: MSFT %.1f/s GOOG %.1f/s INTC %.1f/s AAPL %.2f/s\n\n",
		st.Rate("MSFT"), st.Rate("GOOG"), st.Rate("INTC"), st.Rate("AAPL"))

	for _, alg := range []string{cep.AlgTrivial, cep.AlgEFreq, cep.AlgGreedy, cep.AlgDPB} {
		rt, err := cep.New(p, st, cep.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		matches, err := rt.ProcessAll(cep.Stamp(ticks))
		if err != nil {
			log.Fatal(err)
		}
		partial, buffered := rt.State()
		fmt.Printf("%-8s plan cost %10.0f   matches %4d   final state: %d partial, %d buffered\n",
			alg, rt.PlanCost(), len(matches), partial, buffered)
		fmt.Print("  ", rt.Describe())
	}
	fmt.Println("\nevery plan detects the same matches; the cheap plans hold far less state.")
}
