// Quickstart: declare a pattern in the SASE-style syntax, measure stream
// statistics, let the optimizer pick an evaluation plan, and detect matches.
package main

import (
	"fmt"
	"log"

	cep "repro"
)

func main() {
	// Event types: a fraud-detection flavoured stream.
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user", "amount")
	alert := cep.NewSchema("Alert", "user")

	// Pattern: a login, then a large trade by the same user, then a risk
	// alert for that user — all within ten seconds.
	p, err := cep.ParsePattern(`
		PATTERN SEQ(Login l, Trade t, Alert a)
		WHERE l.user = t.user AND t.user = a.user AND t.amount > 500
		WITHIN 10 s`)
	if err != nil {
		log.Fatal(err)
	}

	// A small historical slice to measure arrival rates and predicate
	// selectivities (the paper's preprocessing stage).
	history := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1_000, 1),
		cep.NewEvent(trade, 2_000, 1, 900),
		cep.NewEvent(trade, 2_500, 2, 100),
		cep.NewEvent(alert, 3_000, 1),
		cep.NewEvent(login, 11_000, 2),
		cep.NewEvent(trade, 12_000, 2, 800),
		cep.NewEvent(alert, 13_000, 2),
	})
	st := cep.Measure(history, p)

	// Plan with bushy-tree dynamic programming (the paper's best method)
	// and run over the live stream.
	rt, err := cep.New(p, st, cep.WithAlgorithm(cep.AlgDPB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rt.Describe())

	live := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 20_000, 7),
		cep.NewEvent(trade, 21_000, 7, 250), // too small: filtered
		cep.NewEvent(trade, 22_000, 7, 750),
		cep.NewEvent(alert, 23_000, 7),
		cep.NewEvent(alert, 24_000, 8), // wrong user
	})
	for _, m := range rt.ProcessAll(live) {
		fmt.Println("match:")
		for _, e := range m.Events() {
			fmt.Printf("  %s\n", e)
		}
	}
	fmt.Printf("plan cost %.1f, %d matches\n", rt.PlanCost(), rt.Matches())
}
