// Quickstart: declare named queries with config-first construction, stream
// one feed through a Session, and receive matches tagged with the query
// that produced them. The optimizer picks each query's evaluation plan from
// measured stream statistics.
package main

import (
	"context"
	"fmt"
	"log"

	cep "repro"
)

func main() {
	// Event types: a fraud-detection flavoured stream.
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user", "amount")
	alert := cep.NewSchema("Alert", "user")

	// A small historical slice to measure arrival rates and predicate
	// selectivities (the paper's preprocessing stage).
	history := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1_000, 1),
		cep.NewEvent(trade, 2_000, 1, 900),
		cep.NewEvent(trade, 2_500, 2, 100),
		cep.NewEvent(alert, 3_000, 1),
		cep.NewEvent(login, 11_000, 2),
		cep.NewEvent(trade, 12_000, 2, 800),
		cep.NewEvent(alert, 13_000, 2),
	})

	// Two queries over the same feed. The first is the paper-style
	// laundering chain planned with bushy-tree dynamic programming; the
	// second watches for any big trade.
	launder := cep.QueryConfig{
		Name: "laundering",
		Source: `PATTERN SEQ(Login l, Trade t, Alert a)
		         WHERE l.user = t.user AND t.user = a.user AND t.amount > 500
		         WITHIN 10 s`,
		Algorithm: cep.AlgDPB,
	}
	bigTrade := cep.QueryConfig{
		Name:   "big-trade",
		Source: `PATTERN SEQ(Trade t) WHERE t.amount > 700 WITHIN 1 s`,
	}
	// Measure statistics per query (each pattern has its own predicates).
	p, err := cep.ParsePattern(launder.Source)
	if err != nil {
		log.Fatal(err)
	}
	launder.Stats = cep.Measure(history, p)

	// One Session serves both queries: every event fans out to each query's
	// worker over a bounded queue, and matches come back tagged.
	s := cep.NewSession(cep.SessionConfig{
		OnMatch: func(query string, m *cep.Match) {
			fmt.Printf("[%s] match:\n", query)
			for _, e := range m.Events() {
				fmt.Printf("  %s\n", e)
			}
		},
	})
	for _, qc := range []cep.QueryConfig{launder, bigTrade} {
		if err := s.Register(qc); err != nil {
			log.Fatal(err)
		}
	}

	live := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 20_000, 7),
		cep.NewEvent(trade, 21_000, 7, 250), // too small: filtered
		cep.NewEvent(trade, 22_000, 7, 750),
		cep.NewEvent(alert, 23_000, 7),
		cep.NewEvent(alert, 24_000, 8), // wrong user
	})
	if err := s.Run(context.Background(), cep.NewStream(live)); err != nil {
		log.Fatal(err)
	}
	if err := s.Close(); err != nil { // end of stream: flush pendings, join workers
		log.Fatal(err)
	}
	fmt.Printf("served %v over one feed\n", s.Queries())
}
