// Traffic: the paper's introductory example — four road cameras A→B→C→D
// report vehicle sightings, camera D transmits one frame for every ten of
// the others, and the task is recognising a vehicle crossing all four in
// order (Figure 1). The example contrasts the natural-order NFA (Fig 1a)
// with the optimizer's rare-event-first lazy NFA (Fig 1b).
package main

import (
	"fmt"
	"log"
	"math/rand"

	cep "repro"
)

func main() {
	cams := map[string]*cep.Schema{
		"A": cep.NewSchema("A", "vehicleID"),
		"B": cep.NewSchema("B", "vehicleID"),
		"C": cep.NewSchema("C", "vehicleID"),
		"D": cep.NewSchema("D", "vehicleID"),
	}
	rng := rand.New(rand.NewSource(7))
	var frames []*cep.Event
	ts := cep.Time(0)
	for i := 0; i < 4000; i++ {
		ts += cep.Time(5 + rng.Int63n(20))
		cam := []string{"A", "B", "C"}[rng.Intn(3)]
		if rng.Intn(10) == 0 { // the malfunctioning camera D
			cam = "D"
		}
		frames = append(frames, cep.NewEvent(cams[cam], ts, float64(rng.Intn(200))))
	}
	frames = cep.Stamp(frames)

	// The chained vehicleID equality is transitive; declaring all pairwise
	// predicates gives the optimizer the full selectivity picture.
	p, err := cep.ParsePattern(`
		PATTERN SEQ(A a, B b, C c, D d)
		WHERE a.vehicleID = b.vehicleID AND a.vehicleID = c.vehicleID AND
		      a.vehicleID = d.vehicleID AND b.vehicleID = c.vehicleID AND
		      b.vehicleID = d.vehicleID AND c.vehicleID = d.vehicleID
		WITHIN 30 s`)
	if err != nil {
		log.Fatal(err)
	}
	st := cep.Measure(frames, p)

	run := func(alg string) {
		rt, err := cep.New(p, st, cep.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		matches, err := rt.ProcessAll(cep.Stamp(frames))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  matches %3d  plan cost %12.0f\n  %s",
			alg, len(matches), rt.PlanCost(), rt.Describe())
	}
	fmt.Println("natural order (Figure 1a) vs optimised lazy order (Figure 1b):")
	run(cep.AlgTrivial)
	run(cep.AlgDPLD)
	fmt.Println("the optimised plan waits for the rare camera D before scanning the buffer.")
}
