// Adaptive: the on-the-fly re-optimisation of Section 6.3. The stream's
// rate profile flips halfway through — the initially rare symbol becomes
// frequent and vice versa — and the adaptive runtime detects the drift,
// regenerates its plan, and keeps the cheap (rare-event-first) order on
// both halves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cep "repro"
)

func main() {
	fast := cep.NewSchema("FAST", "x")
	slow := cep.NewSchema("SLOW", "x")
	tick := cep.NewSchema("TICK", "x")
	schemas := map[string]*cep.Schema{"FAST": fast, "SLOW": slow, "TICK": tick}

	// First half: SLOW is rare. Second half: FAST is rare.
	rng := rand.New(rand.NewSource(1))
	var events []*cep.Event
	ts := cep.Time(0)
	const n = 40000
	for i := 0; i < n; i++ {
		ts += 5
		var typ string
		rare, common := "SLOW", "FAST"
		if i >= n/2 {
			rare, common = "FAST", "SLOW"
		}
		switch {
		case i%50 == 0:
			typ = rare
		case i%2 == 0:
			typ = common
		default:
			typ = "TICK"
		}
		events = append(events, cep.NewEvent(schemas[typ], ts, float64(rng.Intn(4))))
	}
	events = cep.Stamp(events)

	p, err := cep.ParsePattern(`
		PATTERN SEQ(FAST f, SLOW s, TICK t)
		WHERE f.x = s.x AND s.x = t.x
		WITHIN 500 ms`)
	if err != nil {
		log.Fatal(err)
	}

	rt, err := cep.NewAdaptive(p, nil, cep.AdaptiveConfig{
		Algorithm:  cep.AlgDPLD,
		CheckEvery: 2000,
		Threshold:  0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range events {
		if _, err := rt.Process(e); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := rt.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d events, %d matches, %d replans\n",
		n, rt.Matches(), rt.Replans())
	fmt.Println(`the controller re-estimated rates over a sliding window and swapped to a
plan that processes the newly-rare type first when the profile flipped.`)
}
