package cep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/filterindex"
	"repro/internal/metrics"
	"repro/internal/pool"
)

// ShardStats is a point-in-time snapshot of one shard's counters: events
// accepted, batches accepted, matches emitted, back-pressure stalls and
// owned partitions.
type ShardStats = metrics.ShardSnapshot

// ShardConfig configures a ShardedRuntime. The zero value selects the
// defaults.
type ShardConfig struct {
	// Workers is the number of worker goroutines (shards). Default:
	// runtime.NumCPU().
	Workers int
	// QueueLen is the per-worker input queue capacity, in messages (a batch
	// counts as one message). When a worker's queue is full, Submit and
	// SubmitBatch block until the worker catches up — this bound is the
	// back-pressure mechanism that keeps a fast producer from buffering the
	// whole stream in memory. Default: 1024.
	QueueLen int
	// OnMatch, when non-nil, receives every match (including end-of-stream
	// flushes) instead of Close accumulating them. It is invoked from the
	// worker goroutines: calls for the same partition are sequential and in
	// stream order, but calls for different partitions on different shards
	// run concurrently, so the callback must be safe for concurrent use.
	// It must not call back into the runtime (Submit, SubmitBatch, Drain,
	// Close): the worker is blocked inside the callback, so waiting on its
	// own queue deadlocks.
	OnMatch func(*Match)
	// FilterIndex, when true, compiles the pattern's per-position type and
	// constant unary filters into an ingress index (internal/filterindex)
	// consulted before hash routing: events no position could ever consume
	// are dropped at Submit/SubmitBatch instead of occupying queue slots and
	// worker time. Dropping such events never changes the match set — every
	// position, including negated and Kleene ones, keeps a subscription —
	// though negation-held matches may be released slightly later (at the
	// next surviving event or at Flush).
	FilterIndex bool
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	return c
}

// ShardedRuntime is the concurrent deployment shape of PartitionedRuntime:
// events are hash-routed by partition id across N worker goroutines, each
// owning a disjoint set of per-partition engines. Engines stay
// single-goroutine machines — the shard boundary is the concurrency
// boundary — so the match set is exactly the sequential PartitionedRuntime's
// on the same input: a partition's events are always handled by the same
// worker, in submission order, and matches never span partitions.
//
// Lifecycle: NewSharded → Start → Submit/SubmitBatch (any number of
// goroutines) → Flush (collect) or Close (discard). Drain may be called
// mid-stream as a barrier. After Flush or Close the runtime cannot be
// restarted.
//
// ShardedRuntime satisfies the Detector contract: Process lazily starts the
// workers and submits the event (matches are delivered asynchronously — via
// OnMatch, or accumulated for Flush — so Process itself returns none), and
// Flush stops intake, drains the queues, flushes every engine and returns
// the accumulated matches.
//
// Submit and SubmitBatch are safe for concurrent use; to preserve the
// engines' timestamp-order requirement, all events of one partition must be
// submitted in timestamp order (a single producer, or producers partitioned
// by key, both satisfy this). The queueing, lifecycle and error machinery
// is the shared internal/pool helper also driving Session.
type ShardedRuntime struct {
	cfg     ShardConfig
	workers []*shardWorker
	pool    *pool.Pool[shardMsg]
	// ingress is the pre-routing filter index (nil unless
	// cfg.FilterIndex); it is built once at construction and read-only
	// afterwards, so concurrent submitters share it without coordination.
	ingress *filterindex.Index
}

// shardErr translates pool lifecycle sentinels into the runtime's error
// vocabulary.
func shardErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, pool.ErrClosed):
		return fmt.Errorf("cep: sharded runtime: %w", ErrClosed)
	case errors.Is(err, pool.ErrNotStarted):
		return fmt.Errorf("cep: sharded runtime not started")
	case errors.Is(err, pool.ErrStarted):
		return fmt.Errorf("cep: sharded runtime already started")
	default:
		return err
	}
}

// recordErr keeps the first worker error for Close to report.
func (sr *ShardedRuntime) recordErr(err error) { sr.pool.RecordErr(err) }

// shardMsg is one unit on a worker queue: a single event or a whole
// per-shard sub-batch.
type shardMsg struct {
	ev  *Event
	sub *subBatch
}

// subBatch is one shard's slice of a SubmitBatch call. Sub-batches cycle
// through a sync.Pool — they cross goroutines (producer fills, worker
// drains), so per-P caching is the right ownership model. The producer owns
// a sub-batch until SendGrouped succeeds; then the worker owns it and
// releases it after processing.
type subBatch struct {
	evs []*Event
}

var subBatchPool = sync.Pool{New: func() any { return new(subBatch) }}

func getSubBatch() *subBatch { return subBatchPool.Get().(*subBatch) }

// release drops the event references (pooled sub-batches must not pin
// events) and parks the sub-batch.
func (b *subBatch) release() {
	for i := range b.evs {
		b.evs[i] = nil
	}
	b.evs = b.evs[:0]
	subBatchPool.Put(b)
}

// batchScratch is the per-SubmitBatch regrouping workspace, recycled via
// its own sync.Pool: the groups table and the send list persist across
// calls, while the sub-batches they point at are pooled separately because
// their ownership moves to the workers on a successful send.
type batchScratch struct {
	groups []*subBatch
	pairs  []pool.Grouped[shardMsg]
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch(lanes int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.groups) < lanes {
		sc.groups = make([]*subBatch, lanes)
	} else {
		sc.groups = sc.groups[:lanes]
		for i := range sc.groups {
			sc.groups[i] = nil
		}
	}
	sc.pairs = sc.pairs[:0]
	return sc
}

// abort reclaims the sub-batches when nothing was enqueued: on a nil event,
// or on a SendGrouped lifecycle error (the shard pool never retires lanes,
// so a failed grouped send enqueued nothing).
func (sc *batchScratch) abort() {
	for i, g := range sc.groups {
		if g != nil {
			g.release()
			sc.groups[i] = nil
		}
	}
}

// release parks the scratch: sub-batch pointers are dropped (the workers
// own them now) and send-list entries cleared so pooled scratches never pin
// event slices.
func (sc *batchScratch) release() {
	for i := range sc.groups {
		sc.groups[i] = nil
	}
	for i := range sc.pairs {
		sc.pairs[i] = pool.Grouped[shardMsg]{}
	}
	sc.pairs = sc.pairs[:0]
	batchScratchPool.Put(sc)
}

type shardWorker struct {
	sr       *ShardedRuntime
	pr       *PartitionedRuntime
	dead     map[int]bool // partitions whose per-partition plan failed
	counters metrics.ShardCounters
	nParts   int
	matches  []*Match // accumulated when cfg.OnMatch == nil
}

// NewSharded builds a sharded runtime over the pattern. defaults supplies
// statistics for partitions absent from perPartition; both may be nil. The
// per-partition plans are generated lazily on first contact, exactly as in
// NewPartitioned. defaults and perPartition are read concurrently by the
// workers and must not be mutated after this call.
func NewSharded(p *Pattern, defaults *Stats, perPartition map[int]*Stats, cfg ShardConfig, opts ...Option) (*ShardedRuntime, error) {
	cfg = cfg.withDefaults()
	sr := &ShardedRuntime{cfg: cfg}
	sr.pool = pool.New(pool.Hooks[shardMsg]{
		Work:    sr.work,
		Finish:  sr.finish,
		OnStall: func(lane int) { sr.workers[lane].counters.AddStall() },
	})
	for i := 0; i < cfg.Workers; i++ {
		w := &shardWorker{
			sr: sr,
			pr: newPartitioned(p, defaults, perPartition, opts),
		}
		sr.workers = append(sr.workers, w)
		sr.pool.AddLane(cfg.QueueLen)
	}
	// Validate eagerly (once, not per worker) so that configuration errors
	// surface at construction, not at the first event.
	vrt, err := New(p, sr.workers[0].pr.defaults, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.FilterIndex {
		// The per-partition plans may order joins differently, but every
		// plan consumes the same positions with the same unary filters, so
		// the validation runtime's compiled pattern declares the
		// subscriptions for all of them.
		subs := appendRuntimeSubs(nil, 0, vrt, true)
		sr.ingress = filterindex.Build(subs, nil)
	}
	return sr, nil
}

// Workers returns the number of worker goroutines (shards).
func (sr *ShardedRuntime) Workers() int { return len(sr.workers) }

// Start launches the worker goroutines. It errors if the runtime was
// already started or closed.
func (sr *ShardedRuntime) Start() error { return shardErr(sr.pool.Start()) }

// workerIndexFor routes a partition id to its shard index. The
// multiplicative hash decorrelates worker choice from common
// partition-numbering schemes (e.g. symbol % P) so that shards stay
// balanced even when Workers divides the partition stride.
func (sr *ShardedRuntime) workerIndexFor(partition int) int {
	h := uint64(partition) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(len(sr.workers)))
}

func (sr *ShardedRuntime) workerFor(partition int) *shardWorker {
	return sr.workers[sr.workerIndexFor(partition)]
}

// Process lazily starts the workers (if Start was not called) and submits
// the event to its partition's shard. Matches are delivered asynchronously —
// through OnMatch, or accumulated for Flush — so Process always returns a
// nil match slice. It is safe for concurrent use under the SubmitBatch
// ordering rules.
func (sr *ShardedRuntime) Process(e *Event) ([]*Match, error) {
	if e == nil {
		return nil, ErrNilEvent
	}
	if err := sr.pool.EnsureStarted(); err != nil {
		return nil, shardErr(err)
	}
	return nil, sr.Submit(e)
}

// Submit routes one event to its partition's shard, blocking when that
// shard's queue is full (back-pressure). A concurrent Close waits for
// in-flight submissions, so Submit never races a queue close: it either
// enqueues the event or returns the already-closed error.
func (sr *ShardedRuntime) Submit(e *Event) error {
	if e == nil {
		return ErrNilEvent
	}
	if sr.ingress != nil && !sr.ingress.Matches(e) {
		return nil
	}
	return shardErr(sr.pool.Send(sr.workerIndexFor(e.Partition), shardMsg{ev: e}))
}

// SubmitBatch routes a slice of events, regrouping it into one sub-batch
// per destination shard so that channel overhead amortises over the batch
// (at most Workers queue operations per call, however interleaved the
// partitions are). Events of one partition all route to one shard and keep
// their relative order inside its sub-batch, so per-partition stream order
// is preserved. The input slice is not retained; it may be reused as soon
// as the call returns.
func (sr *ShardedRuntime) SubmitBatch(events []*Event) error {
	if len(events) == 0 {
		return nil
	}
	sc := getBatchScratch(len(sr.workers))
	defer sc.release()
	for _, e := range events {
		if e == nil {
			sc.abort()
			return fmt.Errorf("cep: nil event in batch: %w", ErrNilEvent)
		}
		if sr.ingress != nil && !sr.ingress.Matches(e) {
			continue
		}
		i := sr.workerIndexFor(e.Partition)
		g := sc.groups[i]
		if g == nil {
			g = getSubBatch()
			sc.groups[i] = g
		}
		g.evs = append(g.evs, e)
	}
	for i, g := range sc.groups {
		if g != nil {
			sc.pairs = append(sc.pairs, pool.Grouped[shardMsg]{Lane: i, Item: shardMsg{sub: g}})
		}
	}
	// One lifecycle check covers the whole batch: a concurrent Close cannot
	// interleave mid-batch.
	if err := sr.pool.SendGrouped(sc.pairs); err != nil {
		sc.abort()
		return shardErr(err)
	}
	return nil
}

// ProcessBatch lazily starts the workers and submits the whole batch — the
// BatchDetector view of the sharded runtime. As with Process, matches are
// delivered asynchronously, so the returned slice is always nil.
func (sr *ShardedRuntime) ProcessBatch(events []*Event) ([]*Match, error) {
	for _, e := range events {
		if e == nil {
			return nil, ErrNilEvent
		}
	}
	if len(events) == 0 {
		return nil, nil
	}
	if err := sr.pool.EnsureStarted(); err != nil {
		return nil, shardErr(err)
	}
	return nil, sr.SubmitBatch(events)
}

// Drain is a mid-stream barrier: it blocks until every event submitted
// before the call has been fully processed, then returns. Matches keep
// flowing to OnMatch (or keep accumulating for Close); engines are not
// flushed. Concurrent Submit calls during a Drain are allowed but are not
// covered by the barrier.
func (sr *ShardedRuntime) Drain() error { return shardErr(sr.pool.Drain()) }

// Flush ends the stream: it stops intake, waits for every queued event to
// be processed, flushes all engines (releasing matches held back by
// trailing-negation windows) and joins the workers. It returns the
// accumulated matches — every match since Start, in per-partition stream
// order, concatenated shard by shard — or nil when an OnMatch callback
// consumed them. The error is the first engine-construction failure any
// worker encountered, if any. Flushing a flushed (or closed) runtime
// returns ErrClosed; flushing a never-started runtime succeeds with no
// matches.
func (sr *ShardedRuntime) Flush() ([]*Match, error) {
	if err := sr.pool.Shutdown(); err != nil {
		return nil, shardErr(err)
	}
	var out []*Match
	if sr.cfg.OnMatch == nil {
		for _, w := range sr.workers {
			out = append(out, w.matches...)
		}
	}
	return out, sr.pool.Err()
}

// Close stops intake, drains and joins the workers, and discards the
// accumulated matches (OnMatch deliveries still happen while draining). It
// is idempotent: closing a closed or flushed runtime returns nil. Use Flush
// to collect the matches instead.
func (sr *ShardedRuntime) Close() error {
	_, err := sr.Flush()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// PlanFor describes the plan used by one partition, or "" if that partition
// has not been seen. Unlike the counters it reads engine-owned state, so it
// must only be called before Start or after Close.
func (sr *ShardedRuntime) PlanFor(partition int) string {
	return sr.workerFor(partition).pr.PlanFor(partition)
}

// Matches returns the total number of matches emitted so far across all
// shards. It is safe to call concurrently with submission.
func (sr *ShardedRuntime) Matches() int64 {
	var total int64
	for i, w := range sr.workers {
		total += w.counters.Snapshot(i).Matches
	}
	return total
}

// Stats snapshots the per-shard counters. It is safe to call concurrently
// with submission, so a monitoring loop can watch queue stalls and match
// rates live. QueueDepth/QueueCap are read from the live queues at
// snapshot time.
func (sr *ShardedRuntime) Stats() []ShardStats {
	out := make([]ShardStats, len(sr.workers))
	for i, w := range sr.workers {
		out[i] = w.counters.Snapshot(i)
		out[i].QueueDepth, out[i].QueueCap = sr.pool.QueueStats(i)
	}
	return out
}

// work is the pool Work hook: it runs on the lane's worker goroutine, which
// owns the shard's per-partition engines exclusively, so no engine is ever
// touched by two goroutines.
func (sr *ShardedRuntime) work(lane int, msg shardMsg) {
	w := sr.workers[lane]
	if msg.sub != nil {
		w.counters.AddBatch()
		for _, e := range msg.sub.evs {
			w.process(e)
		}
		msg.sub.release()
		return
	}
	w.process(msg.ev)
}

// finish is the pool Finish hook: the lane's queue is closed and drained,
// so flush the shard's engines.
func (sr *ShardedRuntime) finish(lane int) {
	w := sr.workers[lane]
	ms, err := w.pr.Flush()
	if err != nil && !errors.Is(err, ErrClosed) {
		sr.recordErr(err)
	}
	w.emit(ms)
}

func (w *shardWorker) process(e *Event) {
	if w.dead[e.Partition] {
		return
	}
	rt, err := w.pr.runtimeFor(e.Partition)
	if err != nil {
		// Per-partition statistics produced an unplannable configuration;
		// record the first error and drop this partition's events — marking
		// the partition dead so later events skip the planner entirely.
		w.sr.recordErr(err)
		if w.dead == nil {
			w.dead = make(map[int]bool)
		}
		w.dead[e.Partition] = true
		return
	}
	if n := len(w.pr.runtimes); n != w.nParts {
		w.nParts = n
		w.counters.SetPartitions(n)
	}
	w.counters.AddEvents(1)
	ms, err := rt.Process(e)
	if err != nil {
		w.sr.recordErr(err)
		return
	}
	w.emit(ms)
}

func (w *shardWorker) emit(ms []*Match) {
	if len(ms) == 0 {
		return
	}
	w.counters.AddMatches(len(ms))
	if fn := w.sr.cfg.OnMatch; fn != nil {
		for _, m := range ms {
			fn(m)
		}
		return
	}
	w.matches = append(w.matches, ms...)
}
