package cep

import "sync"

// Fleet runs several independent pattern runtimes concurrently over one
// stream: each runtime receives every event on its own bounded channel and
// is driven by its own goroutine (engines are single-goroutine machines, so
// the fleet is the concurrency boundary). This is the typical deployment
// shape of a CEP service monitoring many patterns against one feed. For
// scaling one pattern across partitions of a feed, use ShardedRuntime
// instead.
type Fleet struct {
	runtimes []*Runtime
	queueLen int
}

// NewFleet groups runtimes. The fleet takes ownership: drive the runtimes
// through the fleet only.
func NewFleet(runtimes ...*Runtime) *Fleet {
	return &Fleet{runtimes: runtimes, queueLen: 256}
}

// SetQueueLen sets the per-runtime channel capacity (default 256) and
// returns the fleet for chaining. The bound is the fleet's back-pressure
// mechanism: once the slowest runtime falls that many events behind, the
// broadcaster blocks instead of buffering the stream in memory.
func (f *Fleet) SetQueueLen(n int) *Fleet {
	if n > 0 {
		f.queueLen = n
	}
	return f
}

// Size returns the number of runtimes.
func (f *Fleet) Size() int { return len(f.runtimes) }

// Run feeds the (timestamp-ordered, serial-stamped) events to every runtime
// concurrently and returns the matches per runtime, in fleet order,
// including flushed pendings.
//
// Caution: under SkipTillNextMatch the runtimes share consumption marks on
// the events; concurrent fleets should use skip-till-any or disjoint event
// slices per runtime.
func (f *Fleet) Run(events []*Event) [][]*Match {
	i := 0
	return f.run(func() *Event {
		if i >= len(events) {
			return nil
		}
		e := events[i]
		if e == nil {
			// nil means end-of-stream to the broadcaster; a hole in the
			// slice must fail loudly, not silently truncate the run.
			panic("cep: nil event in Fleet.Run slice")
		}
		i++
		return e
	})
}

// RunStream drains an event source through every runtime concurrently and
// returns the matches per runtime, in fleet order, including flushed
// pendings. Events are pulled at the pace of the slowest runtime once its
// queue fills (back-pressure), so an unbounded source is processed in
// bounded memory. The SkipTillNextMatch caveat of Run applies.
func (f *Fleet) RunStream(src EventSource) [][]*Match {
	return f.run(src.Next)
}

// run broadcasts the pulled events to one bounded channel per runtime from
// a single goroutine; a full channel blocks the broadcast, which is the
// back-pressure bound on how far ahead of the slowest runtime the stream
// can run.
func (f *Fleet) run(next func() *Event) [][]*Match {
	if len(f.runtimes) == 0 {
		return nil // nothing consumes, so don't drain the source
	}
	results := make([][]*Match, len(f.runtimes))
	feeds := make([]chan *Event, len(f.runtimes))
	var wg sync.WaitGroup
	for i, rt := range f.runtimes {
		feeds[i] = make(chan *Event, f.queueLen)
		wg.Add(1)
		go func(i int, rt *Runtime, feed <-chan *Event) {
			defer wg.Done()
			var out []*Match
			for e := range feed {
				out = append(out, rt.Process(e)...)
			}
			results[i] = append(out, rt.Flush()...)
		}(i, rt, feeds[i])
	}
	for e := next(); e != nil; e = next() {
		for _, feed := range feeds {
			feed <- e
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	wg.Wait()
	return results
}

// TotalMatches sums the matches over a Run result.
func TotalMatches(results [][]*Match) int {
	total := 0
	for _, ms := range results {
		total += len(ms)
	}
	return total
}
