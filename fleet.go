package cep

import (
	"fmt"
	"sync"
)

// Fleet runs several independent pattern runtimes concurrently over one
// stream: each runtime receives every event on its own bounded channel and
// is driven by its own goroutine (engines are single-goroutine machines, so
// the fleet is the concurrency boundary).
//
// Deprecated: Fleet predates Session, which serves the same shape — many
// queries, one feed — with named queries, per-query configuration, tagged
// match sinks, context-aware streaming and the Start/Drain/Close lifecycle.
// Fleet remains as a thin positional wrapper and satisfies the Detector
// contract, but new code should register queries on a Session.
type Fleet struct {
	runtimes []*Runtime
	queueLen int
	closed   bool
}

// NewFleet groups runtimes. The fleet takes ownership: drive the runtimes
// through the fleet only.
func NewFleet(runtimes ...*Runtime) *Fleet {
	return &Fleet{runtimes: runtimes, queueLen: 256}
}

// SetQueueLen sets the per-runtime channel capacity (default 256) and
// returns the fleet for chaining. The bound is the fleet's back-pressure
// mechanism: once the slowest runtime falls that many events behind, the
// broadcaster blocks instead of buffering the stream in memory.
func (f *Fleet) SetQueueLen(n int) *Fleet {
	if n > 0 {
		f.queueLen = n
	}
	return f
}

// Size returns the number of runtimes.
func (f *Fleet) Size() int { return len(f.runtimes) }

// Run feeds the (timestamp-ordered, serial-stamped) events to every runtime
// concurrently and returns the matches per runtime, in fleet order,
// including flushed pendings. A nil event in the slice aborts the run with
// an error wrapping ErrNilEvent: a hole must fail loudly, not silently
// truncate the stream.
//
// Caution: under SkipTillNextMatch the runtimes share consumption marks on
// the events; concurrent fleets should use skip-till-any or disjoint event
// slices per runtime.
func (f *Fleet) Run(events []*Event) ([][]*Match, error) {
	i := 0
	var nilErr error
	results, err := f.run(func() *Event {
		if i >= len(events) || nilErr != nil {
			return nil
		}
		e := events[i]
		if e == nil {
			// nil means end-of-stream to the broadcaster; record the hole so
			// the truncated run is reported as an error, not as success.
			nilErr = fmt.Errorf("cep: event %d in Fleet.Run slice: %w", i, ErrNilEvent)
			return nil
		}
		i++
		return e
	})
	if nilErr != nil {
		return results, nilErr
	}
	return results, err
}

// RunStream drains an event source through every runtime concurrently and
// returns the matches per runtime, in fleet order, including flushed
// pendings. Events are pulled at the pace of the slowest runtime once its
// queue fills (back-pressure), so an unbounded source is processed in
// bounded memory. The SkipTillNextMatch caveat of Run applies.
func (f *Fleet) RunStream(src EventSource) ([][]*Match, error) {
	return f.run(src.Next)
}

// run broadcasts the pulled events to one bounded channel per runtime from
// a single goroutine; a full channel blocks the broadcast, which is the
// back-pressure bound on how far ahead of the slowest runtime the stream
// can run. The returned error is the first per-runtime processing failure,
// if any; the other runtimes' results are still returned.
func (f *Fleet) run(next func() *Event) ([][]*Match, error) {
	if len(f.runtimes) == 0 {
		return nil, nil // nothing consumes, so don't drain the source
	}
	f.closed = true // the one-shot run consumes the runtimes
	results := make([][]*Match, len(f.runtimes))
	errs := make([]error, len(f.runtimes))
	feeds := make([]chan *Event, len(f.runtimes))
	var wg sync.WaitGroup
	for i, rt := range f.runtimes {
		feeds[i] = make(chan *Event, f.queueLen)
		wg.Add(1)
		go func(i int, rt *Runtime, feed <-chan *Event) {
			defer wg.Done()
			var out []*Match
			for e := range feed {
				if errs[i] != nil {
					continue // drain the feed so the broadcaster never blocks
				}
				ms, err := rt.Process(e)
				if err != nil {
					errs[i] = err
					continue
				}
				out = append(out, ms...)
			}
			if errs[i] != nil {
				results[i] = out
				return
			}
			fl, err := rt.Flush()
			if err != nil {
				errs[i] = err
			}
			results[i] = append(out, fl...)
		}(i, rt, feeds[i])
	}
	for e := next(); e != nil; e = next() {
		for _, feed := range feeds {
			feed <- e
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Process feeds one event to every runtime synchronously (fleet order) and
// returns the concatenated matches — the Detector view of the fleet. Do not
// mix Process with the concurrent Run/RunStream on the same fleet.
func (f *Fleet) Process(e *Event) ([]*Match, error) {
	if f.closed {
		return nil, ErrClosed
	}
	if e == nil {
		return nil, ErrNilEvent
	}
	var out []*Match
	for _, rt := range f.runtimes {
		ms, err := rt.Process(e)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Flush ends the stream for every runtime and returns the concatenated
// pending matches in fleet order. Flushing twice returns ErrClosed.
func (f *Fleet) Flush() ([]*Match, error) {
	if f.closed {
		return nil, ErrClosed
	}
	f.closed = true
	var out []*Match
	for _, rt := range f.runtimes {
		ms, err := rt.Flush()
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Close releases every runtime without flushing; it is idempotent.
func (f *Fleet) Close() error {
	f.closed = true
	for _, rt := range f.runtimes {
		rt.Close()
	}
	return nil
}

// TotalMatches sums the matches over a Run result.
func TotalMatches(results [][]*Match) int {
	total := 0
	for _, ms := range results {
		total += len(ms)
	}
	return total
}
