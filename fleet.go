package cep

import "sync"

// Fleet runs several independent pattern runtimes concurrently over one
// stream: each runtime receives every event on its own channel and is
// driven by its own goroutine (engines are single-goroutine machines, so
// the fleet is the concurrency boundary). This is the typical deployment
// shape of a CEP service monitoring many patterns against one feed.
type Fleet struct {
	runtimes []*Runtime
}

// NewFleet groups runtimes. The fleet takes ownership: drive the runtimes
// through the fleet only.
func NewFleet(runtimes ...*Runtime) *Fleet {
	return &Fleet{runtimes: runtimes}
}

// Size returns the number of runtimes.
func (f *Fleet) Size() int { return len(f.runtimes) }

// Run feeds the (timestamp-ordered) events to every runtime concurrently
// and returns the matches per runtime, in fleet order, including flushed
// pendings.
//
// Caution: under SkipTillNextMatch the runtimes share consumption marks on
// the events; concurrent fleets should use skip-till-any or disjoint event
// slices per runtime.
func (f *Fleet) Run(events []*Event) [][]*Match {
	results := make([][]*Match, len(f.runtimes))
	var wg sync.WaitGroup
	for i, rt := range f.runtimes {
		feed := make(chan *Event, 256)
		wg.Add(1)
		go func(i int, rt *Runtime, feed <-chan *Event) {
			defer wg.Done()
			var out []*Match
			for e := range feed {
				out = append(out, rt.Process(e)...)
			}
			results[i] = append(out, rt.Flush()...)
		}(i, rt, feed)
		go func(feed chan<- *Event) {
			for _, e := range events {
				feed <- e
			}
			close(feed)
		}(feed)
	}
	wg.Wait()
	return results
}

// TotalMatches sums the matches over a Run result.
func TotalMatches(results [][]*Match) int {
	total := 0
	for _, ms := range results {
		total += len(ms)
	}
	return total
}
