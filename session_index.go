package cep

// The Session side of the ingress discrimination network
// (internal/filterindex): subscription declaration per lane, index
// rebuilds on lane-set mutations, the routed feed path, and the
// IndexReport observability surface. See SessionConfig.FilterIndex.

import (
	"context"
	"sort"
	"sync"

	"repro/internal/filterindex"
	"repro/internal/mqo"
	"repro/internal/pattern"
	"repro/internal/pool"
	"repro/internal/trace"
)

// rebuildIndexLocked recomputes the lane subscriptions and swaps in a
// successor index, reusing the shards (and hit counters) of every type
// outside dirty. nil dirty rebuilds everything. The caller holds mu and —
// on a running session — intakeMu's write side, so the swap is atomic with
// respect to the feed and the index never references a retired lane.
//
// Subscription policy per lane kind:
//   - shared DAG lanes: with FilterIndex, one subscription per engine
//     intake (negation buffers and leaves, slot-addressed) so the verdict
//     substitutes for the engine's own type dispatch and unary filtering;
//     without it they are always-lanes (broadcast members);
//   - private Register/AddQuery lanes: one subscription per pattern
//     position — including negated and Kleene positions, so any event the
//     pattern could consume reaches the lane. The engine re-runs its own
//     checks (routing is a superset filter here); without FilterIndex the
//     subscriptions are type-only, the stage-1 fast path;
//   - RegisterDetector lanes: the plan is opaque — always-lanes.
func (s *Session) rebuildIndexLocked(dirty map[string]bool) {
	var subs []filterindex.Sub
	var always []int
	for _, l := range *s.laneTab.Load() {
		if l.retired || l.discard {
			continue
		}
		switch {
		case l.eng != nil:
			if !s.cfg.FilterIndex {
				always = append(always, l.idx)
				continue
			}
			for _, es := range l.eng.Subscriptions() {
				subs = append(subs, filterindex.Sub{
					Lane: l.idx, Slot: es.Slot, Type: es.Type,
					Conds: es.Conds, Residual: es.Residual,
				})
			}
		case l.q != nil && l.q.rt != nil:
			subs = appendRuntimeSubs(subs, l.idx, l.q.rt, s.cfg.FilterIndex)
		default:
			always = append(always, l.idx)
		}
	}
	s.fidx.Store(filterindex.Update(s.fidx.Load(), subs, always, dirty))
	s.tel.recordKV(s.seq.Load(), "index_rebuild",
		kv("subs", len(subs)), kv("always", len(always)), kv("dirty", len(dirty)))
}

// appendRuntimeSubs declares a private lane's intakes from its compiled
// plan: one subscription per position of every disjunct. With the full
// index the position's unary filters join the subscription; otherwise
// type-only.
func appendRuntimeSubs(subs []filterindex.Sub, lane int, rt *Runtime, full bool) []filterindex.Sub {
	for _, sp := range rt.plan.Simple {
		c := sp.Compiled
		for pos := 0; pos < c.N; pos++ {
			sub := filterindex.Sub{Lane: lane, Slot: -1, Type: c.Types[pos]}
			if full {
				for _, u := range c.Preds.Unaries(pos) {
					if u.HasCond {
						sub.Conds = append(sub.Conds, u.Cond)
					} else {
						sub.Residual = append(sub.Residual, u.Fn)
					}
				}
			}
			subs = append(subs, sub)
		}
	}
	return subs
}

// laneDirtyTypes accumulates the event types the lane subscribes to — the
// shards an index rebuild must reconstruct when this lane changes.
func (s *Session) laneDirtyTypes(dst map[string]bool, l *sessionLane) {
	switch {
	case l.eng != nil:
		for _, es := range l.eng.Subscriptions() {
			dst[es.Type] = true
		}
	case l.q != nil && l.q.rt != nil:
		for _, sp := range l.q.rt.plan.Simple {
			for _, t := range sp.Compiled.Types {
				dst[t] = true
			}
		}
	}
}

// wireIndexStats points the adaptivity collector's unary-selectivity
// source at the live index, so drift re-planning prices the post-index
// rates the lanes actually see. The closure follows RCU swaps by loading
// the current index per query.
func (s *Session) wireIndexStats() {
	if !s.cfg.FilterIndex || s.adapt == nil || s.adapt.col == nil {
		return
	}
	s.adapt.col.SetUnarySource(func(typ string, cond pattern.Condition) (float64, bool) {
		fi := s.fidx.Load()
		if fi == nil {
			return 0, false
		}
		return fi.UnarySelectivity(typ, cond)
	})
}

// routeScratch is the pooled per-call workspace of the routed feed path.
// The hits/pairs/perLane/touched slices are reused across calls; the
// selection slices handed to lanes inside sessionItems are freshly
// allocated per call — their ownership moves to the workers.
type routeScratch struct {
	hits    []filterindex.Hit
	pairs   []pool.Grouped[sessionItem]
	perLane []laneRoute
	touched []int32
}

type laneRoute struct {
	sel      []int32
	slots    []int32
	slotOff  []int32
	hasSlots bool
}

var routePool = sync.Pool{New: func() any { return &routeScratch{} }}

func putRouteScratch(sc *routeScratch) {
	for i := range sc.pairs {
		sc.pairs[i] = pool.Grouped[sessionItem]{}
	}
	sc.pairs = sc.pairs[:0]
	sc.hits = sc.hits[:0]
	sc.touched = sc.touched[:0]
	routePool.Put(sc)
}

// sortHits orders hits by (lane, slot): lane grouping for the routing
// loop, ascending slots for the engines' masked processing (negation
// intakes numbered below leaves). Hit lists are post-filter and typically
// tiny, so insertion sort; large lists fall back to sort.Slice.
func sortHits(h []filterindex.Hit) {
	if len(h) > 64 {
		sort.Slice(h, func(i, j int) bool {
			if h[i].Lane != h[j].Lane {
				return h[i].Lane < h[j].Lane
			}
			return h[i].Slot < h[j].Slot
		})
		return
	}
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && (h[j].Lane < h[j-1].Lane ||
			(h[j].Lane == h[j-1].Lane && h[j].Slot < h[j-1].Slot)); j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

// routeOne evaluates one event against the index and sends it to the
// always-lanes plus every lane with at least one subscription hit. Called
// under intakeMu's read side.
func (s *Session) routeOne(ctx context.Context, fi *filterindex.Index, e *Event, seq uint64, t0 int64, tr *trace.Active) error {
	sc := routePool.Get().(*routeScratch)
	var ti0 filterindex.TypeReport
	if tr != nil {
		ti0, _ = fi.TypeInfo(e.Type)
	}
	sc.hits = fi.AppendHits(e, sc.hits[:0])
	sortHits(sc.hits)
	if tr != nil {
		// Residual-check count is a delta of the shard's lifetime counter:
		// exact with a single submitter, approximate under concurrent feeds
		// (another event of the same type may land between the snapshots).
		ti1, _ := fi.TypeInfo(e.Type)
		tr.Spanf(trace.StageFilter, -1,
			"type=%s subs=%d indexed=%d hits=%d residual_checks=%d always=%d",
			e.Type, ti1.Subs, ti1.IndexedConstraints, len(sc.hits),
			ti1.ResidualChecks-ti0.ResidualChecks, len(fi.Always()))
	}
	lanes := *s.laneTab.Load()
	pairs := sc.pairs[:0]
	for _, lane := range fi.Always() {
		pairs = append(pairs, pool.Grouped[sessionItem]{Lane: int(lane), Item: sessionItem{ev: e, seq: seq, t0: t0}})
	}
	for i := 0; i < len(sc.hits); {
		lane := sc.hits[i].Lane
		j := i + 1
		for j < len(sc.hits) && sc.hits[j].Lane == lane {
			j++
		}
		hi := j
		ln := lanes[int(lane)]
		if ln.parts > 1 && sc.hits[i].Slot >= 0 {
			b := mqo.PartitionBucket(e, ln.partAttr, ln.parts)
			if tr != nil {
				tr.Spanf(trace.StagePartition, int(lane), "bucket=%d parts=%d attr=%s owned=%t",
					b, ln.parts, ln.partAttr, b == ln.part)
			}
			if b != ln.part {
				// Key-partitioned lane that does not own the event's hash
				// bucket: only its negation intakes (the sorted slot prefix
				// below negSlots) may see the event — leaf insertions belong to
				// the owning sibling. (The engine gates leaves itself too; the
				// router filter is what keeps non-owned traffic off the lane.)
				for hi = i; hi < j && int(sc.hits[hi].Slot) < ln.negSlots; hi++ {
				}
				if hi == i {
					i = j
					continue
				}
			}
		}
		it := sessionItem{ev: e, seq: seq, t0: t0}
		if sc.hits[i].Slot >= 0 {
			slots := make([]int32, 0, hi-i)
			for k := i; k < hi; k++ {
				slots = append(slots, sc.hits[k].Slot)
			}
			it.evSlots = slots
		}
		pairs = append(pairs, pool.Grouped[sessionItem]{Lane: int(lane), Item: it})
		i = j
	}
	if tr != nil {
		for i := range pairs {
			pairs[i].Item.tr = tr
			tr.Span(trace.StageEnqueue, pairs[i].Lane, "")
		}
		if len(pairs) == 0 {
			tr.Span(trace.StageEnqueue, -1, "dropped")
		}
	}
	if t := s.tel; t != nil {
		if len(pairs) == 0 {
			t.eventsDropped.Inc() // the index proved no lane can use it
		} else {
			t.eventsRouted.Add(int64(len(pairs)))
		}
	}
	sc.pairs = pairs
	err := sessErr(s.pool.SendGroupedCtx(ctx, pairs))
	putRouteScratch(sc)
	return err
}

// routeBatch evaluates each batch event against the index and sends at
// most ONE item per lane: the whole batch to always-lanes, and the batch
// plus a per-lane selection (event indices and, for shared DAG lanes,
// flattened slot lists) to lanes with hits. Per-event sequence numbers are
// reconstructed from the item seq plus the selected index, exactly as in
// the broadcast batch path. Called under intakeMu's read side.
func (s *Session) routeBatch(ctx context.Context, fi *filterindex.Index, batch []*Event, seq0 uint64, t0 int64, tr *trace.Active) error {
	sc := routePool.Get().(*routeScratch)
	lanes := *s.laneTab.Load()
	nl := len(lanes)
	if cap(sc.perLane) < nl {
		sc.perLane = make([]laneRoute, nl)
	}
	sc.perLane = sc.perLane[:nl]
	touched := sc.touched[:0]
	nohit := 0
	routed := 0
	for bi, e := range batch {
		sc.hits = fi.AppendHits(e, sc.hits[:0])
		if len(sc.hits) == 0 {
			nohit++
			continue
		}
		sortHits(sc.hits)
		for i := 0; i < len(sc.hits); {
			lane := sc.hits[i].Lane
			j := i + 1
			for j < len(sc.hits) && sc.hits[j].Lane == lane {
				j++
			}
			hi := j
			if ln := lanes[int(lane)]; ln.parts > 1 && sc.hits[i].Slot >= 0 &&
				mqo.PartitionBucket(e, ln.partAttr, ln.parts) != ln.part {
				// Non-owned bucket on a key-partitioned lane: keep only the
				// negation-intake prefix of the slot hits (see routeOne).
				for hi = i; hi < j && int(sc.hits[hi].Slot) < ln.negSlots; hi++ {
				}
				if hi == i {
					i = j
					continue
				}
			}
			lr := &sc.perLane[lane]
			if lr.sel == nil {
				touched = append(touched, lane)
				lr.hasSlots = sc.hits[i].Slot >= 0
			}
			lr.sel = append(lr.sel, int32(bi))
			routed++
			if lr.hasSlots {
				lr.slotOff = append(lr.slotOff, int32(len(lr.slots)))
				for k := i; k < hi; k++ {
					lr.slots = append(lr.slots, sc.hits[k].Slot)
				}
			}
			i = j
		}
	}
	if tr != nil {
		// One coarse filter span for the whole sampled batch: per-event
		// verdicts would swamp the trace at batch sizes, so the span carries
		// the aggregate — event→lane deliveries and events no lane wanted.
		tr.Spanf(trace.StageFilter, -1, "events=%d routed=%d nohit=%d always=%d",
			len(batch), routed, nohit, len(fi.Always()))
	}
	pairs := sc.pairs[:0]
	for _, lane := range fi.Always() {
		pairs = append(pairs, pool.Grouped[sessionItem]{Lane: int(lane), Item: sessionItem{batch: batch, seq: seq0, t0: t0}})
	}
	for _, lane := range touched {
		lr := &sc.perLane[lane]
		if tr != nil {
			if ln := lanes[int(lane)]; ln.parts > 1 {
				tr.Spanf(trace.StagePartition, int(lane), "parts=%d attr=%s sel=%d",
					ln.parts, ln.partAttr, len(lr.sel))
			}
		}
		it := sessionItem{batch: batch, seq: seq0, t0: t0, sel: lr.sel}
		if lr.hasSlots {
			lr.slotOff = append(lr.slotOff, int32(len(lr.slots)))
			it.slots = lr.slots
			it.slotOff = lr.slotOff
		}
		pairs = append(pairs, pool.Grouped[sessionItem]{Lane: int(lane), Item: it})
		sc.perLane[lane] = laneRoute{} // slices moved into the item
	}
	if tr != nil {
		for i := range pairs {
			pairs[i].Item.tr = tr
			tr.Span(trace.StageEnqueue, pairs[i].Lane, "")
		}
		if len(pairs) == 0 {
			tr.Span(trace.StageEnqueue, -1, "dropped")
		}
	}
	if t := s.tel; t != nil {
		// Count event→lane deliveries (matching routeOne's accounting):
		// every selected event per touched lane, plus the whole batch for
		// each always-lane.
		t.eventsRouted.Add(int64(routed) + int64(len(fi.Always()))*int64(len(batch)))
		if len(fi.Always()) == 0 {
			// With no always-lanes, a no-hit event reached nothing at all.
			t.eventsDropped.Add(int64(nohit))
		}
	}
	sc.pairs = pairs
	sc.touched = touched
	err := sessErr(s.pool.SendGroupedCtx(ctx, pairs))
	putRouteScratch(sc)
	return err
}

// IndexTypeReport is the per-event-type slice of IndexReport.
type IndexTypeReport struct {
	// Type is the event type this shard dispatches.
	Type string
	// Subscriptions counts the intakes registered for the type — the
	// candidate set stage-1 dispatch narrows an event to.
	Subscriptions int
	// ScanSubscriptions counts the subscriptions with no indexable
	// constraint: stage 2 scans their residual filters on every event of
	// the type.
	ScanSubscriptions int
	// IndexedConstraints counts the distinct constant constraints compiled
	// into the type's hash/range tables.
	IndexedConstraints int
	// Events is the number of events of this type evaluated.
	Events int64
	// Hits is the number of subscription hits those events produced.
	Hits int64
	// HitRate is Hits / (Events × Subscriptions): the average fraction of
	// the type's candidate set an event actually matches — the post-index
	// fan-out the broadcast path would have paid in full.
	HitRate float64
	// ResidualFraction is ScanSubscriptions / Subscriptions: how much of
	// the type's candidate set the constraint tables cannot discriminate.
	ResidualFraction float64
}

// IndexReport describes the ingress filter index: per-type candidate
// counts, measured hit rates and residual-scan fractions.
type IndexReport struct {
	// FullIndex reports whether SessionConfig.FilterIndex enabled the
	// constant-predicate tables; false means only the type-dispatch fast
	// path for private lanes is active.
	FullIndex bool
	// Lanes is the number of live lanes fed through the index;
	// AlwaysLanes the number bypassing it (opaque detectors, and shared
	// DAG lanes when FullIndex is false).
	Lanes       int
	AlwaysLanes int
	// Subscriptions is the total registered intake count.
	Subscriptions int
	Types         []IndexTypeReport
}

// IndexReport returns a snapshot of the ingress filter index, or nil
// before the session started. The snapshot is immutable; counters are
// cumulative over each type shard's lifetime (shards survive churn of
// unrelated types).
func (s *Session) IndexReport() *IndexReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return nil
	}
	fi := s.fidx.Load()
	if fi == nil {
		return nil
	}
	rep := &IndexReport{
		FullIndex:     s.cfg.FilterIndex,
		AlwaysLanes:   len(fi.Always()),
		Subscriptions: fi.Subs(),
	}
	for _, l := range *s.laneTab.Load() {
		if !l.retired && !l.discard {
			rep.Lanes++
		}
	}
	rep.Lanes -= rep.AlwaysLanes
	for _, tr := range fi.Report() {
		itr := IndexTypeReport{
			Type:               tr.Type,
			Subscriptions:      tr.Subs,
			ScanSubscriptions:  tr.ScanSubs,
			IndexedConstraints: tr.IndexedConstraints,
			Events:             tr.Events,
			Hits:               tr.Hits,
		}
		if tr.Events > 0 && tr.Subs > 0 {
			itr.HitRate = float64(tr.Hits) / (float64(tr.Events) * float64(tr.Subs))
		}
		if tr.Subs > 0 {
			itr.ResidualFraction = float64(tr.ScanSubs) / float64(tr.Subs)
		}
		rep.Types = append(rep.Types, itr)
	}
	return rep
}
