package cep

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// driftSchema caches one-attribute schemas for the drift workloads.
var driftSchemas = map[string]*Schema{}

func driftSchema(name string) *Schema {
	if s, ok := driftSchemas[name]; ok {
		return s
	}
	s := NewSchema(name, "x")
	driftSchemas[name] = s
	return s
}

// phaseStream generates deterministic periodic arrivals for each type at
// its phase rate (events/second) over [from, to), with x drawn uniformly
// from 0..9. Types are staggered so merged timestamps rarely tie.
func phaseStream(rng *rand.Rand, rates map[string]float64, from, to Time) []*Event {
	var out []*Event
	names := make([]string, 0, len(rates))
	for name := range rates {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		rate := rates[name]
		if rate <= 0 {
			continue
		}
		step := Time(float64(Second) / rate)
		if step < 1 {
			step = 1
		}
		for ts := from + Time(i+1); ts < to; ts += step {
			out = append(out, NewEvent(driftSchema(name), ts, float64(rng.Intn(10))))
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// regimeShiftStream is phase-1 rates for dur1, then phase-2 rates for dur2.
func regimeShiftStream(seed int64, rates1, rates2 map[string]float64, dur1, dur2 Time) []*Event {
	rng := rand.New(rand.NewSource(seed))
	evs := phaseStream(rng, rates1, 0, dur1)
	evs = append(evs, phaseStream(rng, rates2, dur1, dur1+dur2)...)
	return evs
}

// headPairQueries builds n queries SEQ(A a, B b, T<i> c) sharing the (A,B)
// head pair, with a selective equality on the pair and an order predicate
// to the tail.
func headPairQueries(t *testing.T, history []*Event, n int) []QueryConfig {
	t.Helper()
	out := make([]QueryConfig, 0, n)
	for i := 0; i < n; i++ {
		tail := []string{"T1", "T2", "T3", "T4"}[i]
		p := Seq(2*Second,
			E("A", "a"), E("B", "b"), E(tail, "c"),
		).Where(
			AttrCmp("a", "x", Eq, "b", "x"),
			AttrCmp("b", "x", Lt, "c", "x"),
		)
		out = append(out, QueryConfig{
			Name:    []string{"q1", "q2", "q3", "q4"}[i],
			Pattern: p,
			Stats:   Measure(history, p),
		})
	}
	return out
}

// runAdaptiveSession feeds the stream through a session built from cfg with
// the queries registered, flushes, and returns the session for inspection.
func runAdaptiveSession(t *testing.T, cfg SessionConfig, queries []QueryConfig, stream []*Event) *Session {
	t.Helper()
	s := NewSession(cfg)
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background(), NewStream(stream)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

// crossCheck compares every query's session matches against a private
// runtime over the same stream.
func crossCheck(t *testing.T, s *Session, queries []QueryConfig, stream []*Event) int {
	t.Helper()
	total := 0
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rt.ProcessAll(stream)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(s.Matches(qc.Name)); got != len(want) {
			t.Fatalf("query %s: session %d matches, private runtime %d", qc.Name, got, len(want))
		}
		total += len(want)
	}
	return total
}

func adaptiveCfg() *AdaptiveSessionConfig {
	return &AdaptiveSessionConfig{
		CheckEvery:   500,
		WarmupEvents: 1000,
		MinInterval:  1000,
		Hysteresis:   2,
	}
}

// TestSessionDriftDissolvesStaleSharing inverts the stream's rate profile
// mid-feed: the shared (A,B) head pair, cheap at planning time, becomes the
// hottest join in phase 2 while the tails go quiet. The adaptive session
// must detect the drift, re-optimize the component (dissolving the sharing
// that stopped winning), and still produce exactly the private runtimes'
// matches across the splice.
func TestSessionDriftDissolvesStaleSharing(t *testing.T) {
	rates1 := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	rates2 := map[string]float64{"A": 25, "B": 25, "T1": 0.5, "T2": 0.5}
	stream := regimeShiftStream(11, rates1, rates2, 120*Second, 120*Second)
	history := regimeShiftStream(11, rates1, nil, 120*Second, 0)
	queries := headPairQueries(t, history, 2)

	// Static control: the same queries share the head pair for the whole
	// stream.
	static := runAdaptiveSession(t, SessionConfig{QueueLen: 1024, ShareSubplans: true}, queries,
		regimeShiftStream(11, rates1, rates2, 120*Second, 120*Second))
	if rep := static.ShareReport(); rep.Shared != 2 {
		t.Fatalf("static session did not share the head pair: %+v", rep)
	}

	s := runAdaptiveSession(t, SessionConfig{
		QueueLen: 1024, ShareSubplans: true, Adaptive: adaptiveCfg(),
	}, queries, stream)

	drep := s.DriftReport()
	if drep == nil {
		t.Fatal("DriftReport is nil on an adaptive session")
	}
	if drep.Events != int64(len(stream)) {
		t.Fatalf("collector observed %d events, stream has %d", drep.Events, len(stream))
	}
	if drep.Checks == 0 {
		t.Fatal("no drift checks performed")
	}
	if drep.Reopts == 0 {
		t.Fatal("regime shift did not trigger a re-optimization")
	}
	if rep := s.ShareReport(); rep.Shared != 0 {
		t.Fatalf("stale sharing survived the drift re-opt: %+v", rep)
	}
	if total := crossCheck(t, s, queries, stream); total == 0 {
		t.Fatal("cross-check was vacuous (no matches)")
	}
}

// TestSessionDriftFormsNewSharing is the mirror image: two queries whose
// common (C,D) sub-join is too hot to share at planning time; after the
// shift it becomes cheap and the drift re-opt must form the shared group
// across what were singleton lanes — again match-exactly.
func TestSessionDriftFormsNewSharing(t *testing.T) {
	rates1 := map[string]float64{"U1": 2, "U2": 2, "C": 30, "D": 30}
	rates2 := map[string]float64{"U1": 20, "U2": 20, "C": 1, "D": 1}
	stream := regimeShiftStream(13, rates1, rates2, 120*Second, 120*Second)
	history := regimeShiftStream(13, rates1, nil, 120*Second, 0)
	var queries []QueryConfig
	for i, head := range []string{"U1", "U2"} {
		p := Seq(2*Second,
			E(head, "u"), E("C", "b"), E("D", "c"),
		).Where(
			AttrCmp("u", "x", Lt, "b", "x"),
			AttrCmp("b", "x", Eq, "c", "x"),
		)
		queries = append(queries, QueryConfig{
			Name:    []string{"f1", "f2"}[i],
			Pattern: p,
			Stats:   Measure(history, p),
		})
	}

	s := runAdaptiveSession(t, SessionConfig{
		QueueLen: 1024, ShareSubplans: true, Adaptive: adaptiveCfg(),
	}, queries, stream)

	drep := s.DriftReport()
	if drep == nil || drep.Reopts == 0 {
		t.Fatalf("regime shift did not trigger a re-optimization: %+v", drep)
	}
	rep := s.ShareReport()
	found := false
	for _, comp := range rep.Components {
		if len(comp.Members) == 2 && comp.Members[0] == "f1" && comp.Members[1] == "f2" {
			found = true
			if comp.Reopts == 0 {
				t.Fatalf("formed component does not record its drift re-opt: %+v", comp)
			}
		}
	}
	if !found {
		t.Fatalf("drift re-opt did not form the (C,D) sharing group: %+v", rep)
	}
	if total := crossCheck(t, s, queries, stream); total == 0 {
		t.Fatal("cross-check was vacuous (no matches)")
	}
}

// TestSessionAdaptiveStationaryNoFlap runs the adaptive session on a
// stationary (noisy but rate-stable) stream: checks happen, but no
// re-optimization may fire.
func TestSessionAdaptiveStationaryNoFlap(t *testing.T) {
	rates := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	stream := regimeShiftStream(17, rates, nil, 240*Second, 0)
	queries := headPairQueries(t, stream, 2)

	s := runAdaptiveSession(t, SessionConfig{
		QueueLen: 1024, ShareSubplans: true, Adaptive: adaptiveCfg(),
	}, queries, stream)

	drep := s.DriftReport()
	if drep == nil || drep.Checks == 0 {
		t.Fatalf("no drift checks performed: %+v", drep)
	}
	if drep.Reopts != 0 {
		t.Fatalf("stationary stream triggered %d re-optimizations (flapping)", drep.Reopts)
	}
	if rep := s.ShareReport(); rep.Shared != 2 {
		t.Fatalf("stationary session lost its sharing: %+v", rep)
	}
	crossCheck(t, s, queries, stream)
}

// TestSessionPrivateLanesAdapt runs an adaptive session without subplan
// sharing: every query sits on a private lane, which the session wraps in a
// re-optimizing controller fed from the shared collector. The rate flip
// must produce at least one private replan.
func TestSessionPrivateLanesAdapt(t *testing.T) {
	rates1 := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	rates2 := map[string]float64{"A": 25, "B": 25, "T1": 0.5, "T2": 0.5}
	stream := regimeShiftStream(19, rates1, rates2, 120*Second, 120*Second)
	history := regimeShiftStream(19, rates1, nil, 120*Second, 0)
	queries := headPairQueries(t, history, 2)

	s := runAdaptiveSession(t, SessionConfig{
		QueueLen: 1024, Adaptive: adaptiveCfg(),
	}, queries, stream)

	drep := s.DriftReport()
	if drep == nil {
		t.Fatal("DriftReport is nil")
	}
	if len(drep.Private) != 2 {
		t.Fatalf("private adaptive lanes reported: %+v, want 2", drep.Private)
	}
	replans := int64(0)
	for _, pr := range drep.Private {
		if pr.Checks == 0 {
			t.Fatalf("private lane %s performed no checks", pr.Query)
		}
		replans += pr.Replans
	}
	if replans == 0 {
		t.Fatal("rate flip did not trigger any private-lane replan")
	}
}

// TestSessionStatsPathPersistence closes the loop of the ROADMAP item: a
// session measures statistics while serving, persists them on Close, and a
// restarted session seeds planning from the file.
func TestSessionStatsPathPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	rates := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	stream := regimeShiftStream(23, rates, nil, 120*Second, 0)
	queries := headPairQueries(t, stream, 2)

	// First run: StatsPath only (no Adaptive) still collects and saves.
	s1 := runAdaptiveSession(t, SessionConfig{QueueLen: 1024, StatsPath: path}, queries, stream)
	if s1.DriftReport() != nil {
		t.Fatal("StatsPath alone must not enable drift adaptivity")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("statistics not persisted: %v", err)
	}
	saved, err := LoadStats(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r := saved.Rate("T1"); r < 10 || r > 30 {
		t.Fatalf("persisted rate for T1 = %.2f, want ~20", r)
	}
	if r := saved.Rate("A"); r < 0.5 || r > 5 {
		t.Fatalf("persisted rate for A = %.2f, want ~2", r)
	}

	// Second run: queries registered without Stats plan from the seed.
	s2 := NewSession(SessionConfig{QueueLen: 1024, StatsPath: path})
	if s2.adapt == nil || s2.adapt.seed == nil {
		t.Fatal("restarted session did not load the persisted seed")
	}
	qc := queries[0]
	qc.Stats = nil
	if err := s2.Register(qc); err != nil {
		t.Fatal(err)
	}
	q := s2.byName[qc.Name]
	if q.qc.Stats != s2.adapt.seed {
		t.Fatal("seed statistics not wired into planning")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A corrupt statistics file surfaces at registration.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := NewSession(SessionConfig{StatsPath: bad})
	if err := s3.Register(queries[0]); err == nil {
		t.Fatal("corrupt statistics file not reported")
	}
}

// TestSessionStatsSnapshotLive reads measured statistics from a running
// adaptive session.
func TestSessionStatsSnapshotLive(t *testing.T) {
	rates := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	stream := regimeShiftStream(29, rates, nil, 60*Second, 0)
	queries := headPairQueries(t, stream, 2)
	s := NewSession(SessionConfig{QueueLen: 1024, ShareSubplans: true, Adaptive: adaptiveCfg()})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if s.StatsSnapshot() != nil {
		t.Fatal("StatsSnapshot before Start must be nil")
	}
	if err := s.Run(context.Background(), NewStream(stream)); err != nil {
		t.Fatal(err)
	}
	snap := s.StatsSnapshot()
	if snap == nil {
		t.Fatal("StatsSnapshot nil on a running adaptive session")
	}
	if r := snap.Rate("T1"); r < 10 || r > 30 {
		t.Fatalf("measured rate for T1 = %.2f, want ~20", r)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionAdaptiveConcurrentReaders races report readers against the
// feed (run with -race): reports must stay consistent while the collector
// observes and drift checks splice lanes.
func TestSessionAdaptiveConcurrentReaders(t *testing.T) {
	rates1 := map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20}
	rates2 := map[string]float64{"A": 25, "B": 25, "T1": 0.5, "T2": 0.5}
	stream := regimeShiftStream(31, rates1, rates2, 100*Second, 100*Second)
	history := regimeShiftStream(31, rates1, nil, 100*Second, 0)
	queries := headPairQueries(t, history, 2)

	s := NewSession(SessionConfig{QueueLen: 1024, ShareSubplans: true, Adaptive: adaptiveCfg()})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.ShareReport()
				s.DriftReport()
				s.StatsSnapshot()
			}
		}
	}()
	for _, ev := range stream {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if drep := s.DriftReport(); drep == nil || drep.Events != int64(len(stream)) {
		t.Fatalf("DriftReport after concurrent feed: %+v", drep)
	}
	crossCheck(t, s, queries, stream)
}
