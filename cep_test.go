package cep

import (
	"strings"
	"testing"
)

var (
	loginSchema = NewSchema("Login", "user")
	tradeSchema = NewSchema("Trade", "user", "amount")
	alertSchema = NewSchema("Alert", "user")
)

func demoEvents() []*Event {
	return Stamp([]*Event{
		NewEvent(loginSchema, 1000, 7),
		NewEvent(tradeSchema, 2000, 7, 100),
		NewEvent(tradeSchema, 2500, 9, 50),
		NewEvent(alertSchema, 3000, 7),
		NewEvent(loginSchema, 4000, 9),
		NewEvent(alertSchema, 5000, 9),
	})
}

func demoPattern(t *testing.T) *Pattern {
	t.Helper()
	p, err := ParsePattern(`PATTERN SEQ(Login l, Trade t, Alert a)
	                        WHERE l.user = t.user AND t.user = a.user
	                        WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// processAll drives a runtime over a slice, failing the test on any error
// of the Detector contract.
func processAll(t testing.TB, rt *Runtime, events []*Event) []*Match {
	t.Helper()
	ms, err := rt.ProcessAll(events)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestQuickstartFlow(t *testing.T) {
	p := demoPattern(t)
	events := demoEvents()
	st := Measure(events, p)
	for _, alg := range append(OrderAlgorithms(), TreeAlgorithms()...) {
		rt, err := New(p, st, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		ms := processAll(t, rt, Stamp(events))
		if len(ms) != 1 {
			t.Fatalf("%s: got %d matches, want 1", alg, len(ms))
		}
		if rt.Matches() != 1 {
			t.Fatalf("%s: Matches() = %d", alg, rt.Matches())
		}
		if rt.PlanCost() <= 0 {
			t.Fatalf("%s: PlanCost = %g", alg, rt.PlanCost())
		}
	}
}

func TestProgrammaticPatternConstruction(t *testing.T) {
	p := Seq(10*Second,
		E("Login", "l"), E("Trade", "t"),
	).Where(AttrCmp("l", "user", Eq, "t", "user"))
	rt, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// login@1000 user7 → trade@2000 user7 matches; login@4000 user9 has no
	// later trade, so exactly one match.
	ms := processAll(t, rt, demoEvents())
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
}

func TestOnMatchCallbackAndState(t *testing.T) {
	p := demoPattern(t)
	var seen int
	rt, err := New(p, nil, WithOnMatch(func(*Match) { seen++ }))
	if err != nil {
		t.Fatal(err)
	}
	rt.ProcessAll(demoEvents())
	if seen != 1 {
		t.Fatalf("callback fired %d times", seen)
	}
	partial, buffered := rt.State()
	if partial < 0 || buffered <= 0 {
		t.Fatalf("State = %d, %d", partial, buffered)
	}
}

func TestDescribePlans(t *testing.T) {
	p := demoPattern(t)
	st := Measure(demoEvents(), p)
	rt, err := New(p, st, WithAlgorithm(AlgDPLD))
	if err != nil {
		t.Fatal(err)
	}
	desc := rt.Describe()
	if !strings.Contains(desc, "order plan") || !strings.Contains(desc, "cost") {
		t.Fatalf("Describe() = %q", desc)
	}
	rt, err = New(p, st, WithAlgorithm(AlgDPB))
	if err != nil {
		t.Fatal(err)
	}
	desc = rt.Describe()
	if !strings.Contains(desc, "tree plan") || !strings.Contains(desc, "(") {
		t.Fatalf("Describe() = %q", desc)
	}
}

func TestDisjunctionRuntime(t *testing.T) {
	p, err := ParsePattern(`PATTERN OR(SEQ(Login l, Alert a), SEQ(Trade t, Alert b))
	                        WHERE l.user = a.user AND t.user = b.user
	                        WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := processAll(t, rt, demoEvents())
	// login7→alert7, login9→alert9, trade7→alert7, trade9→alert9: 4 matches.
	if len(ms) != 4 {
		t.Fatalf("got %d matches, want 4", len(ms))
	}
	if !strings.Contains(rt.Describe(), "disjunct") {
		t.Fatal("Describe should list disjuncts")
	}
}

func TestLatencyWeightChangesPlan(t *testing.T) {
	st := NewStats()
	st.SetRate("Login", 10)
	st.SetRate("Trade", 5)
	st.SetRate("Alert", 0.1)
	p := Seq(10*Second, E("Login", "l"), E("Trade", "t"), E("Alert", "a"))
	fast, err := New(p, st, WithAlgorithm(AlgDPLD))
	if err != nil {
		t.Fatal(err)
	}
	lowLat, err := New(p, st, WithAlgorithm(AlgDPLD), WithLatencyWeight(1e9))
	if err != nil {
		t.Fatal(err)
	}
	// Throughput-optimal starts with the rare Alert; the latency-dominated
	// plan must end with it instead (Alert is the temporally last event).
	if !strings.Contains(fast.Describe(), "[a ") {
		t.Fatalf("throughput plan = %s", fast.Describe())
	}
	if !strings.Contains(lowLat.Describe(), " a]") {
		t.Fatalf("latency plan = %s", lowLat.Describe())
	}
}

func TestStrategyOption(t *testing.T) {
	p := demoPattern(t)
	rt, err := New(p, nil, WithStrategy(SkipTillNextMatch))
	if err != nil {
		t.Fatal(err)
	}
	events := demoEvents()
	ms := processAll(t, rt, events)
	if len(ms) != 1 {
		t.Fatalf("got %d matches", len(ms))
	}
	Stamp(events) // no-op sanity: events remain ordered
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	p := demoPattern(t)
	if _, err := New(p, nil, WithAlgorithm("NOPE")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestContiguityOnConjunctionRejected(t *testing.T) {
	// Contiguity strategies require a sequence; the compile error must
	// surface through the facade.
	p := And(10*Second, E("Login", "l"), E("Trade", "t"))
	if _, err := New(p, nil, WithStrategy(StrictContiguity)); err == nil {
		t.Fatal("strict contiguity on AND accepted")
	}
}

func TestMaxKleeneBasePropagates(t *testing.T) {
	p := Seq(10*Second, E("Login", "l"), KL("Trade", "t"))
	rt, err := New(p, nil, WithMaxKleeneBase(2))
	if err != nil {
		t.Fatal(err)
	}
	events := Stamp([]*Event{
		NewEvent(loginSchema, 1000, 1),
		NewEvent(tradeSchema, 2000, 1, 1),
		NewEvent(tradeSchema, 3000, 1, 2),
		NewEvent(tradeSchema, 4000, 1, 3),
		NewEvent(tradeSchema, 5000, 1, 4),
	})
	got := len(processAll(t, rt, events))
	// With an uncapped base there would be 2^4−1 = 15 matches; the cap of 2
	// bounds the subsets enumerable per arrival.
	if got >= 15 {
		t.Fatalf("cap did not bind: %d matches", got)
	}
	if got == 0 {
		t.Fatal("cap killed all matches")
	}
}

func TestProcessStream(t *testing.T) {
	p := demoPattern(t)
	rt, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	rt.ProcessStream(NewStream(demoEvents()), func(*Match) { got++ })
	if got != 1 {
		t.Fatalf("stream matches = %d, want 1", got)
	}
	// nil callback must not panic.
	rt2, _ := New(p, nil)
	rt2.ProcessStream(NewStream(demoEvents()), nil)
	if rt2.Matches() != 1 {
		t.Fatalf("Matches() = %d", rt2.Matches())
	}
}
