package cep

// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md §3 for the figure → experiment mapping), plus micro-benchmarks
// of the engines and planners. Figure benchmarks run a scaled-down workload
// per iteration; use cmd/cepbench for full-size tables.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/nfa"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/workload"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *harness.Runner
)

// benchHarness shares one generated workload across the figure benchmarks.
func benchHarness() *harness.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = harness.NewRunner(harness.Config{
			Symbols: 24,
			Events:  3000,
			Window:  2 * event.Second,
			Sizes:   []int{3, 4, 5},
			PerSize: 1,
			Seed:    1,
		})
	})
	return benchRunner
}

func benchFigure(b *testing.B, n int) {
	r := benchHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ThroughputByCategory regenerates Figures 4a/4b (and 5a/5b,
// which share the runs): per-category throughput of all nine algorithms.
func BenchmarkFig4ThroughputByCategory(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFig5MemoryByCategory regenerates Figures 5a/5b.
func BenchmarkFig5MemoryByCategory(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFig6SeqThroughput regenerates Figures 6/7 (sequence patterns by
// size).
func BenchmarkFig6SeqThroughput(b *testing.B) { benchFigure(b, 6) }

// BenchmarkFig8NegationThroughput regenerates Figures 8/9.
func BenchmarkFig8NegationThroughput(b *testing.B) { benchFigure(b, 8) }

// BenchmarkFig10ConjunctionThroughput regenerates Figures 10/11.
func BenchmarkFig10ConjunctionThroughput(b *testing.B) { benchFigure(b, 10) }

// BenchmarkFig12KleeneThroughput regenerates Figures 12/13.
func BenchmarkFig12KleeneThroughput(b *testing.B) { benchFigure(b, 12) }

// BenchmarkFig14DisjunctionThroughput regenerates Figures 14/15.
func BenchmarkFig14DisjunctionThroughput(b *testing.B) { benchFigure(b, 14) }

// BenchmarkFig16CostModelValidation regenerates Figure 16.
func BenchmarkFig16CostModelValidation(b *testing.B) { benchFigure(b, 16) }

// BenchmarkFig17aPlanCost and BenchmarkFig17bPlanGenTime regenerate the
// large-pattern study (plan quality and planning time; costs only).
func BenchmarkFig17aPlanCost(b *testing.B) { benchFigure(b, 17) }

// BenchmarkFig17bPlanGenTime times the planning algorithms themselves on a
// size-14 conjunction (the Fig 17b measurement at one size).
func BenchmarkFig17bPlanGenTime(b *testing.B) {
	r := benchHarness()
	p := r.Stocks.Pattern(workload.CatConjunction, 14, r.Cfg.Window, benchRng())
	ps := stats.For(p, r.StatsFor(p))
	model := cost.DefaultModel()
	for _, alg := range []string{core.AlgGreedy, core.AlgIIGreedy, core.AlgDPLD} {
		oa, err := core.NewOrderAlgorithm(alg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oa.Order(ps, model)
			}
		})
	}
	b.Run(core.AlgDPB, func(b *testing.B) {
		ta, _ := core.NewTreeAlgorithm(core.AlgDPB)
		for i := 0; i < b.N; i++ {
			ta.Tree(ps, model)
		}
	})
}

// BenchmarkFig18LatencyTradeoff regenerates Figure 18.
func BenchmarkFig18LatencyTradeoff(b *testing.B) { benchFigure(b, 18) }

// BenchmarkFig19SelectionStrategies regenerates Figure 19.
func BenchmarkFig19SelectionStrategies(b *testing.B) { benchFigure(b, 19) }

// --- engine micro-benchmarks ---

func benchPattern(b *testing.B) (*predicate.Compiled, []*event.Event) {
	b.Helper()
	r := benchHarness()
	p := r.Stocks.Pattern(workload.CatSequence, 4, r.Cfg.Window, benchRng())
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		b.Fatal(err)
	}
	return c, r.Events
}

func benchRng() *rand.Rand { return rand.New(rand.NewSource(99)) }

// BenchmarkNFAProcess measures raw order-based engine throughput.
func BenchmarkNFAProcess(b *testing.B) {
	c, events := benchPattern(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := nfa.New(c, c.Positives, nfa.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			e.Process(ev)
		}
		e.Flush()
	}
	b.SetBytes(int64(len(events)))
}

// BenchmarkTreeProcess measures raw tree-based engine throughput.
func BenchmarkTreeProcess(b *testing.B) {
	c, events := benchPattern(b)
	r := benchHarness()
	p := r.Stocks.Pattern(workload.CatSequence, 4, r.Cfg.Window, benchRng())
	st := stats.For(p, r.StatsFor(p))
	root := core.DPB{}.Tree(st, cost.DefaultModel())
	// Map planning indices to term positions (all positive here).
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := tree.New(c, root, tree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			e.Process(ev)
		}
		e.Flush()
	}
	b.SetBytes(int64(len(events)))
}

// --- sharded runtime benchmarks ---

var (
	shardBenchOnce   sync.Once
	shardBenchEvents []*Event
	shardBenchP      *Pattern
	shardBenchStats  *Stats
)

// shardBench shares one partitioned workload across the sharded benchmarks.
func shardBench(b *testing.B) ([]*Event, *Pattern, *Stats) {
	shardBenchOnce.Do(func() {
		shardBenchEvents, shardBenchP, shardBenchStats = shardWorkload(b, 20000, 32)
	})
	return shardBenchEvents, shardBenchP, shardBenchStats
}

// BenchmarkPartitionedSequential is the single-goroutine baseline the
// sharded runtime is measured against: the same partitioned stream through
// the sequential PartitionedRuntime.
func BenchmarkPartitionedSequential(b *testing.B) {
	events, p, st := shardBench(b)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := NewPartitioned(p, st, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			if _, err := pr.Process(ev); err != nil {
				b.Fatal(err)
			}
		}
		pr.Flush()
	}
}

// BenchmarkShardedThroughput measures the sharded runtime at doubling
// worker counts (compare ns/op against BenchmarkPartitionedSequential; the
// speedup materialises with GOMAXPROCS >= workers). Bytes/s is events/s.
func BenchmarkShardedThroughput(b *testing.B) {
	events, p, st := shardBench(b)
	workers := []int{1, 2, 4, 8}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(events)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr, err := NewSharded(p, st, nil, ShardConfig{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if err := sr.Start(); err != nil {
					b.Fatal(err)
				}
				const batch = 512
				for j := 0; j < len(events); j += batch {
					end := j + batch
					if end > len(events) {
						end = len(events)
					}
					if err := sr.SubmitBatch(events[j:end]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sr.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSubmit isolates the routing and queueing overhead of the
// submission path: one worker, one event per call, and an event type that
// no pattern term accepts, so the engine contributes only its type filter.
// Resubmitting the same event keeps timestamps trivially non-decreasing.
func BenchmarkShardedSubmit(b *testing.B) {
	events, p, st := shardBench(b)
	var ev *Event
	for _, e := range events {
		if e.Type == "S007" { // not a term of the benchmark pattern
			ev = e
			break
		}
	}
	if ev == nil {
		b.Fatal("no S007 event in workload")
	}
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 1, QueueLen: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sr.Submit(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sr.Close()
}

// BenchmarkPlannerAlgorithms times full planning (stats assembly included)
// for a size-6 sequence.
func BenchmarkPlannerAlgorithms(b *testing.B) {
	r := benchHarness()
	p := r.Stocks.Pattern(workload.CatSequence, 6, r.Cfg.Window, benchRng())
	st := r.StatsFor(p)
	for _, alg := range []string{core.AlgGreedy, core.AlgDPLD, core.AlgZStream, core.AlgDPB} {
		b.Run(alg, func(b *testing.B) {
			planner := core.NewPlanner(alg)
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(p, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
