package cep

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// traceSession builds a started sharing+indexed session over the stock
// workload with the given trace configuration.
func traceSession(t *testing.T, tc *TraceConfig, cfg ...func(*SessionConfig)) (*Session, []*Event) {
	t.Helper()
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 2000, Seed: 7, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	sc := SessionConfig{QueueLen: 64, ShareSubplans: true, FilterIndex: true, Trace: tc}
	for _, f := range cfg {
		f(&sc)
	}
	s := NewSession(sc)
	for _, qc := range stockQueries(t, stocks.Registry, events) {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, events
}

func TestSessionTracesSampled(t *testing.T) {
	s, events := traceSession(t, &TraceConfig{SampleEvery: 4, RingCap: 8})
	defer s.Close()

	half := len(events) / 2
	for _, ev := range events[:half] {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SubmitBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	trs := s.Traces()
	if len(trs) == 0 {
		t.Fatal("no traces sampled at SampleEvery=4")
	}
	if len(trs) > 8 {
		t.Fatalf("ring holds %d traces, cap 8", len(trs))
	}
	stages := map[string]int{}
	for _, tr := range trs {
		if len(tr.Spans) == 0 {
			t.Fatalf("trace seq=%d has no spans", tr.Seq)
		}
		if tr.Spans[0].Stage != trace.StageSubmit {
			t.Fatalf("trace seq=%d first span = %q, want %q", tr.Seq, tr.Spans[0].Stage, trace.StageSubmit)
		}
		last := int64(-1)
		for _, sp := range tr.Spans {
			if sp.AtNS < last {
				t.Fatalf("trace seq=%d span offsets not monotone: %d after %d", tr.Seq, sp.AtNS, last)
			}
			last = sp.AtNS
			stages[sp.Stage]++
		}
	}
	// A drained, indexed, shared session must have crossed every stage in
	// the retained traces: filter verdict, enqueue, dequeue, engine, emit.
	for _, want := range []string{
		trace.StageSubmit, trace.StageFilter, trace.StageEnqueue,
		trace.StageDequeue, trace.StageEngine, trace.StageEmit,
	} {
		if stages[want] == 0 {
			t.Fatalf("no %q span in any retained trace; stages = %v", want, stages)
		}
	}

	m := s.Metrics()
	if m.TracesSampled == 0 {
		t.Fatal("metrics report zero traces sampled")
	}
	if m.TracesRetained != len(trs) {
		t.Fatalf("traces retained %d != Traces() length %d", m.TracesRetained, len(trs))
	}
}

func TestSessionTraceDisabled(t *testing.T) {
	s, events := traceSession(t, nil)
	defer s.Close()
	if err := s.SubmitBatch(events[:500]); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	trs := s.Traces()
	if trs == nil || len(trs) != 0 {
		t.Fatalf("Traces() = %v with tracing off, want empty non-nil", trs)
	}
	m := s.Metrics()
	if m.TracesSampled != 0 || m.TracesRetained != 0 {
		t.Fatalf("trace counters nonzero with tracing off: %d/%d", m.TracesSampled, m.TracesRetained)
	}
}

func TestTracesJSONEndpoint(t *testing.T) {
	s, events := traceSession(t, &TraceConfig{SampleEvery: 1})
	defer s.Close()
	if err := s.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	var trs []trace.Trace
	if err := json.Unmarshal(body, &trs); err != nil {
		t.Fatalf("/debug/traces.json not a trace array: %v\n%s", err, body)
	}
	if len(trs) == 0 {
		t.Fatal("/debug/traces.json empty after a sampled run")
	}
	if trs[0].Spans[0].Stage != trace.StageSubmit {
		t.Fatalf("first span stage = %q", trs[0].Spans[0].Stage)
	}
}

// provCheck asserts every accumulated match of every query carries an
// exact provenance record: Seqs aligned index-for-index with Events(),
// mapped through the submission-order seq assignment.
func provCheck(t *testing.T, s *Session, queries []string, seqOf map[*Event]uint64) {
	t.Helper()
	total := 0
	for _, name := range queries {
		for _, m := range s.Matches(name) {
			total++
			p := m.Prov
			if p == nil {
				t.Fatalf("query %q: match without provenance", name)
			}
			evs := m.Events()
			if len(p.Seqs) != len(evs) {
				t.Fatalf("query %q: %d seqs for %d events", name, len(p.Seqs), len(evs))
			}
			for i, ev := range evs {
				want, ok := seqOf[ev]
				if !ok {
					t.Fatalf("query %q: match binds an unknown event", name)
				}
				if p.Seqs[i] != want {
					t.Fatalf("query %q: seq[%d] = %d, want %d (%v)", name, i, p.Seqs[i], want, p.Seqs)
				}
			}
			if p.Lane < 0 {
				t.Fatalf("query %q: provenance lane = %d", name, p.Lane)
			}
			if p.LatencyNS < 0 {
				t.Fatalf("query %q: negative latency %d", name, p.LatencyNS)
			}
		}
	}
	if total == 0 {
		t.Fatal("no matches accumulated; provenance assertions are vacuous")
	}
}

func TestSessionMatchProvenanceExact(t *testing.T) {
	s, events := traceSession(t, &TraceConfig{Provenance: true})
	seqOf := make(map[*Event]uint64, len(events))
	// Per-event for the first half, batches for the rest: both submission
	// paths assign seqs in submission order.
	half := len(events) / 2
	for i, ev := range events {
		seqOf[ev] = uint64(i + 1)
	}
	for _, ev := range events[:half] {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SubmitBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	provCheck(t, s, []string{"pairs", "bucket-conj", "negation", "chain"}, seqOf)

	// In-stream matches carry a live submit→emit latency; only window-flush
	// releases may report 0.
	sawLatency := false
	for _, m := range s.Matches("pairs") {
		if m.Prov.LatencyNS > 0 {
			sawLatency = true
		}
	}
	if !sawLatency {
		t.Fatal("no match observed a positive provenance latency")
	}
}

// TestSessionProvenanceAcrossSplice pins the AdoptFrom invariant: partial
// matches built before a live re-optimization splice keep their per-event
// sequence numbers, so matches completed AFTER the splice still report
// exact provenance for events submitted BEFORE it.
func TestSessionProvenanceAcrossSplice(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 3000, Seed: 13, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	s := NewSession(SessionConfig{
		QueueLen: 64, ShareSubplans: true, FilterIndex: true,
		Trace: &TraceConfig{Provenance: true},
	})
	for _, qc := range pool[:3] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	seqOf := make(map[*Event]uint64, len(events))
	for i, ev := range events {
		seqOf[ev] = uint64(i + 1)
	}
	third := len(events) / 3
	if err := s.SubmitBatch(events[:third]); err != nil {
		t.Fatal(err)
	}
	// Splice 1: an overlapping prefix query joins the shared component
	// mid-stream (the same churn the journal test shows splicing).
	if err := s.AddQuery(pool[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitBatch(events[third : 2*third]); err != nil {
		t.Fatal(err)
	}
	// Splice 2: removal re-optimizes the survivors again.
	if err := s.RemoveQuery(pool[0].Name); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitBatch(events[2*third:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	names := []string{pool[1].Name, pool[2].Name, pool[3].Name}
	provCheck(t, s, names, seqOf)
	// The splices bumped generations; post-splice emissions must carry them.
	maxGen := 0
	for _, name := range names {
		for _, m := range s.Matches(name) {
			if m.Prov.Generation > maxGen {
				maxGen = m.Prov.Generation
			}
		}
	}
	if maxGen == 0 {
		t.Fatal("no match emitted from a post-splice generation")
	}
}

// TestTraceChurnRace hammers Traces/Explain/Metrics from reader goroutines
// while a writer feeds batches and a churner splices queries in and out —
// under -race this pins the tracing and explain surfaces as data-race free
// against the feed and adaptive restructuring.
func TestTraceChurnRace(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 6000, Seed: 31, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	s := NewSession(SessionConfig{
		QueueLen: 64, ShareSubplans: true, FilterIndex: true,
		Trace: &TraceConfig{SampleEvery: 16, RingCap: 32, Provenance: true},
	})
	for _, qc := range pool[:4] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		for i := 0; i < 6; i++ {
			extra := pool[4+(i%(len(pool)-4))]
			if err := s.AddQuery(extra); err != nil {
				t.Error(err)
				return
			}
			if err := s.RemoveQuery(extra.Name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, tr := range s.Traces() {
					for _, sp := range tr.Spans {
						_ = sp.Stage
					}
				}
				if _, err := s.Explain(pool[0].Name); err != nil {
					t.Error(err)
					return
				}
				_ = s.Metrics()
			}
		}()
	}
	const batch = 200
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		if err := s.SubmitBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	<-churned
	close(done)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
}
