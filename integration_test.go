package cep

// End-to-end integration tests: random patterns from the workload generator
// run through the full public pipeline (parse/measure/plan/execute) and are
// checked against the brute-force oracle applied to each DNF disjunct.

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/workload"
)

// oracleCount sums the oracle's matches over the pattern's DNF disjuncts
// (disjuncts are detected independently; overlaps count twice, exactly as
// the engines emit them).
func oracleCount(t *testing.T, p *Pattern, events []*Event) int {
	t.Helper()
	disjuncts, err := pattern.ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range disjuncts {
		c, err := predicate.Compile(d, predicate.SkipTillAnyMatch)
		if err != nil {
			t.Fatal(err)
		}
		total += len(oracle.Find(c, events))
	}
	return total
}

func TestRuntimeMatchesOracleOnWorkloadPatterns(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 10, Events: 1500, Seed: 21, MinRate: 1, MaxRate: 4,
	})
	events := stocks.Generate()
	rng := rand.New(rand.NewSource(5))
	window := 1500 * event.Millisecond
	for _, cat := range []workload.Category{
		workload.CatSequence, workload.CatConjunction,
		workload.CatNegation, workload.CatDisjunction,
	} {
		for trial := 0; trial < 3; trial++ {
			p := stocks.Pattern(cat, 3, window, rng)
			want := oracleCount(t, p, events)
			st := Measure(events, p)
			for _, alg := range []string{AlgTrivial, AlgGreedy, AlgDPLD, AlgZStream, AlgDPB, AlgKBZ, AlgAuto} {
				rt, err := New(p, st, WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("%s %s: %v", cat, alg, err)
				}
				got := len(processAll(t, rt, workload.ResetStream(events)))
				if got != want {
					t.Fatalf("%s %s on %s: %d matches, oracle %d", cat, alg, p, got, want)
				}
			}
		}
	}
}

func TestRuntimeKleeneMatchesOracle(t *testing.T) {
	// Kleene needs tight streams to keep the power sets enumerable.
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 8, Events: 300, Seed: 23, MinRate: 0.5, MaxRate: 2,
	})
	events := stocks.Generate()
	rng := rand.New(rand.NewSource(9))
	window := 1200 * event.Millisecond
	for trial := 0; trial < 3; trial++ {
		p := stocks.Pattern(workload.CatKleene, 3, window, rng)
		want := oracleCount(t, p, events)
		st := Measure(events, p)
		for _, alg := range []string{AlgGreedy, AlgDPB} {
			rt, err := New(p, st, WithAlgorithm(alg), WithMaxKleeneBase(oracle.MaxKleeneCandidates))
			if err != nil {
				t.Fatal(err)
			}
			got := len(processAll(t, rt, workload.ResetStream(events)))
			if got != want {
				t.Fatalf("%s on %s: %d matches, oracle %d", alg, p, got, want)
			}
		}
	}
}

// TestParserRoundTripProperty renders random workload patterns to text and
// reparses them, checking structural identity.
func TestParserRoundTripProperty(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{Symbols: 12, Seed: 27})
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		cat := workload.Categories()[rng.Intn(5)]
		p := stocks.Pattern(cat, 3+rng.Intn(4), Second, rng)
		src := "PATTERN " + p.String()
		q, err := ParsePattern(src)
		if err != nil {
			t.Fatalf("reparse of %q: %v", src, err)
		}
		if q.String() != p.String() {
			t.Fatalf("round trip changed pattern:\n%s\n%s", p, q)
		}
	}
}
