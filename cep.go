// Package cep is a complex event processing library with join-query-style
// plan optimisation, reproducing Kolchinsky & Schuster, "Join Query
// Optimization Techniques for Complex Event Processing Applications"
// (VLDB 2018).
//
// The library detects declarative patterns — sequences, conjunctions,
// disjunctions, negation and Kleene closure over typed event streams with
// pairwise predicates and sliding windows — using either a lazy chain NFA
// (order-based plans) or a ZStream-style instance tree (tree-based plans).
// The evaluation plan is chosen by one of eight plan-generation algorithms,
// six of which are classic join-ordering techniques adapted to CEP per the
// paper: greedy ordering, iterative improvement, and Selinger dynamic
// programming over left-deep and bushy plan spaces.
//
// Every runtime flavor — Runtime, AdaptiveRuntime, PartitionedRuntime,
// ShardedRuntime, Fleet — satisfies the unified Detector contract
// (Process/Flush/Close with errors, no panics on bad input). The front door
// for serving is Session: register any number of named queries, each with
// its own declarative QueryConfig, stream one feed through all of them with
// context-aware cancellation and bounded queues, and receive matches on
// per-query sinks tagged with the query name.
//
// Quick start:
//
//	p, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Trade t, Alert a)
//	                          WHERE l.user = t.user AND t.user = a.user
//	                          WITHIN 10 s`)
//	s := cep.NewSession(cep.SessionConfig{
//	    OnMatch: func(query string, m *cep.Match) {
//	        fmt.Println(query, "matched:", m.Events())
//	    },
//	})
//	s.Register(cep.QueryConfig{
//	    Name:      "laundering",
//	    Pattern:   p,
//	    Stats:     cep.Measure(history, p), // arrival rates + selectivities
//	    Algorithm: cep.AlgDPB,
//	})
//	s.Run(context.Background(), cep.NewStream(liveEvents))
//	s.Close()
//
// For one pattern on one goroutine, cep.New (or cep.NewFromConfig) builds a
// plain Runtime with the same Detector contract.
package cep

import (
	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// Core data types, re-exported from the internal packages.
type (
	// Event is a primitive event: a typed, timestamped attribute tuple.
	Event = event.Event
	// Schema names the attributes of one event type.
	Schema = event.Schema
	// Registry is a catalogue of event schemas.
	Registry = event.Registry
	// Time is a timestamp or duration in milliseconds.
	Time = event.Time
	// Pattern is the AST of a CEP pattern.
	Pattern = pattern.Pattern
	// Condition is one WHERE-clause predicate.
	Condition = pattern.Condition
	// Operand is one side of a condition.
	Operand = pattern.Operand
	// Term is an operand of an n-ary pattern operator.
	Term = pattern.Term
	// CmpOp is a comparison operator.
	CmpOp = pattern.CmpOp
	// Match is a detected full pattern match.
	Match = match.Match
	// Stats holds measured arrival rates and predicate selectivities.
	Stats = stats.Stats
	// Strategy is an event selection strategy (Section 6.2 of the paper).
	Strategy = predicate.Strategy
)

// Time units.
const (
	Millisecond = event.Millisecond
	Second      = event.Second
	Minute      = event.Minute
)

// Comparison operators for conditions.
const (
	Lt = pattern.Lt
	Le = pattern.Le
	Eq = pattern.Eq
	Ne = pattern.Ne
	Ge = pattern.Ge
	Gt = pattern.Gt
)

// Event selection strategies.
const (
	SkipTillAnyMatch    = predicate.SkipTillAnyMatch
	SkipTillNextMatch   = predicate.SkipTillNextMatch
	StrictContiguity    = predicate.StrictContiguity
	PartitionContiguity = predicate.PartitionContiguity
)

// NewSchema declares an event type with the given attribute names.
func NewSchema(name string, attrs ...string) *Schema { return event.NewSchema(name, attrs...) }

// NewRegistry builds a schema catalogue.
func NewRegistry(schemas ...*Schema) *Registry { return event.NewRegistry(schemas...) }

// NewEvent builds an event of the schema at the timestamp.
func NewEvent(s *Schema, ts Time, values ...float64) *Event { return event.New(s, ts, values...) }

// Stamp validates timestamp order on a hand-built event slice and stamps
// serial numbers.
func Stamp(events []*Event) []*Event {
	return event.Drain(event.NewSliceStream(events))
}

// NewStream wraps a timestamp-sorted event slice as an EventSource for
// Runtime.ProcessStream, stamping serial numbers as events are pulled.
func NewStream(events []*Event) EventSource {
	return event.NewSliceStream(events)
}

// Pattern constructors (programmatic alternative to ParsePattern).
var (
	// Seq builds a sequence pattern.
	Seq = pattern.Seq
	// And builds a conjunctive pattern.
	And = pattern.And
	// Or builds a disjunctive pattern.
	Or = pattern.Or
	// E declares a positive primitive event term.
	E = pattern.E
	// Not declares a negated event term.
	Not = pattern.Not
	// KL declares a Kleene-closure event term.
	KL = pattern.KL
	// Sub nests a subpattern as a term.
	Sub = pattern.Sub
	// AttrCmp builds the condition "a.x OP b.y".
	AttrCmp = pattern.AttrCmp
	// Cmp builds a condition from operands.
	Cmp = pattern.Cmp
	// Ref builds an attribute-reference operand.
	Ref = pattern.Ref
	// Const builds a constant operand.
	Const = pattern.Const
	// TSOrder builds the temporal-order condition a.ts < b.ts.
	TSOrder = pattern.TSOrder
)

// ParsePattern parses the SASE-style textual pattern syntax:
//
//	PATTERN SEQ(A a, NOT(B b), KL(C c), OR(D d, E e))
//	WHERE a.x < c.x AND c.y = d.y
//	WITHIN 20 minutes
func ParsePattern(src string) (*Pattern, error) { return parser.Parse(src) }

// ParsePatternWith parses and validates types/attributes against a registry.
func ParsePatternWith(src string, reg *Registry) (*Pattern, error) {
	return parser.ParseWith(src, reg)
}

// NewStats returns an empty statistics bundle with neutral defaults; set
// rates and selectivities by hand when no history is available.
func NewStats() *Stats { return stats.New() }

// Measure computes arrival rates and the pattern's predicate selectivities
// from a historical event slice — the paper's preprocessing stage.
func Measure(events []*Event, p *Pattern) *Stats {
	return stats.MeasurePattern(events, p)
}
