package cep_test

// Runnable examples for live query management: AddQuery/RemoveQuery on a
// running Session and the churn-safe ShareReport snapshot.

import (
	"fmt"

	cep "repro"
)

// ExampleSession_AddQuery registers a query on a session that is already
// running. The new query observes exactly the events submitted after
// AddQuery returns: the first (Login, Trade) pair below completes before
// registration and belongs only to the pre-existing query, the second pair
// is seen by both. On a ShareSubplans session the affected sharing
// component is re-optimized incrementally — pre-existing queries keep
// their buffered partial matches across the splice.
func ExampleSession_AddQuery() {
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user")
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(trade, 2000, 7),
		cep.NewEvent(login, 3000, 9),
		cep.NewEvent(trade, 4000, 9),
	})

	s := cep.NewSession(cep.SessionConfig{ShareSubplans: true})
	if err := s.Register(cep.QueryConfig{
		Name:  "pairs",
		Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 10 s`,
	}); err != nil {
		panic(err)
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	for _, e := range events[:2] {
		if err := s.Submit(e); err != nil {
			panic(err)
		}
	}
	// Mid-feed: a second, overlapping query goes live.
	if err := s.AddQuery(cep.QueryConfig{
		Name:  "late-pairs",
		Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 10 s`,
	}); err != nil {
		panic(err)
	}
	for _, e := range events[2:] {
		if err := s.Submit(e); err != nil {
			panic(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		panic(err)
	}
	fmt.Println("pairs:", len(s.Matches("pairs")), "late-pairs:", len(s.Matches("late-pairs")))
	// Output:
	// pairs: 2 late-pairs: 1
}

// ExampleSession_RemoveQuery retires a query from a running session. The
// removal is a barrier: events submitted before the call are fully
// processed and delivered first, afterwards the name is gone (and may be
// reused by a later AddQuery).
func ExampleSession_RemoveQuery() {
	login := cep.NewSchema("Login", "user")
	trade := cep.NewSchema("Trade", "user")

	var delivered []string
	s := cep.NewSession(cep.SessionConfig{
		OnMatch: func(query string, m *cep.Match) {
			delivered = append(delivered, query)
		},
	})
	for _, qc := range []cep.QueryConfig{
		{Name: "watch", Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 10 s`},
		{Name: "keep", Query: `PATTERN SEQ(Trade t) WHERE t.user > 8 WITHIN 1 s`},
	} {
		if err := s.Register(qc); err != nil {
			panic(err)
		}
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(trade, 2000, 7),
		cep.NewEvent(trade, 3000, 9),
	})
	if err := s.Submit(events[0]); err != nil {
		panic(err)
	}
	if err := s.Submit(events[1]); err != nil {
		panic(err)
	}
	// The pair above is delivered before RemoveQuery returns (the removal
	// barrier); the trade afterwards is seen only by the surviving query,
	// so the two sink appends can never race.
	if err := s.RemoveQuery("watch"); err != nil {
		panic(err)
	}
	if err := s.Submit(events[2]); err != nil {
		panic(err)
	}
	if _, err := s.Flush(); err != nil {
		panic(err)
	}
	fmt.Println(delivered)
	// Output:
	// [watch keep]
}

// ExampleSession_ShareReport reads the optimizer's decision snapshot while
// the query set churns: Generation counts the incremental
// re-optimizations, and each component reports the generation that last
// rebuilt it. Snapshots are immutable — a concurrent AddQuery never
// mutates one already returned.
func ExampleSession_ShareReport() {
	s := cep.NewSession(cep.SessionConfig{ShareSubplans: true})
	for _, qc := range []cep.QueryConfig{
		{Name: "twin-1", Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 10 s`},
		{Name: "twin-2", Query: `PATTERN SEQ(Login l, Trade t) WHERE l.user = t.user WITHIN 10 s`},
	} {
		if err := s.Register(qc); err != nil {
			panic(err)
		}
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	before := s.ShareReport()
	// An overlapping query joins the twins' component live.
	if err := s.AddQuery(cep.QueryConfig{
		Name:  "triplet",
		Query: `PATTERN SEQ(Login l, Trade t, Alert a) WHERE l.user = t.user WITHIN 10 s`,
	}); err != nil {
		panic(err)
	}
	after := s.ShareReport()
	fmt.Printf("before: shared=%d generation=%d\n", before.Shared, before.Generation)
	fmt.Printf("after:  shared=%d generation=%d components=%d\n",
		after.Shared, after.Generation, len(after.Components))
	if err := s.Close(); err != nil {
		panic(err)
	}
	// Output:
	// before: shared=2 generation=0
	// after:  shared=3 generation=1 components=1
}
