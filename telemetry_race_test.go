package cep

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// TestMetricsConcurrentReaders hammers every report surface from reader
// goroutines while a writer feeds batches and a third goroutine churns
// queries (AddQuery/RemoveQuery splices). Run under -race this pins the
// snapshot paths as data-race free; the assertions pin the monotonicity
// and generation-consistency contracts of Session.Metrics.
func TestMetricsConcurrentReaders(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 6000, Seed: 29, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)

	s := NewSession(SessionConfig{
		QueueLen: 64, ShareSubplans: true, FilterIndex: true,
		Telemetry: &TelemetryConfig{LatencySampleEvery: 8},
	})
	for _, qc := range pool[:4] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var pending atomic.Int32 // writer + churner still running
	pending.Store(2)
	var wg sync.WaitGroup

	// Writer: feed the whole stream in batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if pending.Add(-1) == 0 {
				stop.Store(true)
			}
		}()
		const batch = 200
		for i := 0; i < len(events); i += batch {
			end := i + batch
			if end > len(events) {
				end = len(events)
			}
			if err := s.SubmitBatch(events[i:end]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Churner: add/remove overlapping queries, forcing splices and index
	// rebuilds mid-stream. Fixed iteration count so splices are guaranteed
	// even when the writer outruns it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if pending.Add(-1) == 0 {
				stop.Store(true)
			}
		}()
		for i := 0; i < 6; i++ {
			extra := pool[4+(i%(len(pool)-4))]
			if err := s.AddQuery(extra); err != nil {
				t.Error(err)
				return
			}
			if err := s.RemoveQuery(extra.Name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: each asserts its own observations are monotonic.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := &SessionMetrics{}
			for !stop.Load() {
				m := s.Metrics()
				if m.EventsSubmitted < last.EventsSubmitted {
					t.Errorf("events_submitted went backwards: %d -> %d", last.EventsSubmitted, m.EventsSubmitted)
					return
				}
				if m.ItemsProcessed < last.ItemsProcessed {
					t.Errorf("items_processed went backwards: %d -> %d", last.ItemsProcessed, m.ItemsProcessed)
					return
				}
				if m.MatchesEmitted < last.MatchesEmitted {
					t.Errorf("matches_emitted went backwards: %d -> %d", last.MatchesEmitted, m.MatchesEmitted)
					return
				}
				if m.Latency.Count < last.Latency.Count {
					t.Errorf("latency count went backwards: %d -> %d", last.Latency.Count, m.Latency.Count)
					return
				}
				if m.Generation < last.Generation {
					t.Errorf("generation went backwards: %d -> %d", last.Generation, m.Generation)
					return
				}
				if m.JournalRecorded < last.JournalRecorded {
					t.Errorf("journal recorded went backwards: %d -> %d", last.JournalRecorded, m.JournalRecorded)
					return
				}
				if m.Share != nil && m.Generation < m.Share.Generation {
					t.Errorf("snapshot generation %d < share generation %d", m.Generation, m.Share.Generation)
					return
				}
				// The other report surfaces must stay callable concurrently.
				_ = s.ShareReport()
				_ = s.DriftReport()
				_ = s.IndexReport()
				last = m
			}
		}()
	}

	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.EventsSubmitted != int64(len(events)) {
		t.Fatalf("events_submitted = %d, want %d", m.EventsSubmitted, len(events))
	}
	if m.Generation == 0 {
		t.Fatal("no splices happened; churn goroutine never ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close snapshots still work and report the terminal state.
	final := s.Metrics()
	if !final.Closed {
		t.Fatal("post-close snapshot not marked closed")
	}
}

// TestShardStatsConcurrentReaders feeds a sharded runtime while readers
// poll Stats(), asserting per-shard event counters never move backwards.
func TestShardStatsConcurrentReaders(t *testing.T) {
	events, p, st := shardWorkload(t, 4000, 8)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 3, QueueLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Start(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for _, ev := range events {
			if err := sr.Submit(ev); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := map[int]int64{}
			for !stop.Load() {
				for _, sn := range sr.Stats() {
					if sn.Events < last[sn.Shard] {
						t.Errorf("shard %d events went backwards: %d -> %d", sn.Shard, last[sn.Shard], sn.Events)
						return
					}
					last[sn.Shard] = sn.Events
					if sn.QueueDepth < 0 || sn.QueueDepth > sn.QueueCap {
						t.Errorf("shard %d queue depth %d outside [0,%d]", sn.Shard, sn.QueueDepth, sn.QueueCap)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := sr.Drain(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, sn := range sr.Stats() {
		total += sn.Events
	}
	if total != int64(len(events)) {
		t.Fatalf("shard events = %d, want %d", total, len(events))
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
}
