package cep_test

import (
	"bytes"
	"fmt"
	"strings"

	cep "repro"
)

// ExampleParsePattern parses the paper's four-cameras pattern.
func ExampleParsePattern() {
	p, err := cep.ParsePattern(`
		PATTERN SEQ(A a, B b, C c, D d)
		WHERE a.vehicleID = d.vehicleID
		WITHIN 10 minutes`)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Op, p.Size(), p.Window)
	// Output: SEQ 4 600000
}

// ExampleNew plans and runs a pattern end to end.
func ExampleNew() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	p, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Alert a)
	                          WHERE l.user = a.user WITHIN 5 s`)
	rt, _ := cep.New(p, nil, cep.WithAlgorithm(cep.AlgGreedy))
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 3000, 9), // wrong user
	})
	ms, _ := rt.ProcessAll(events)
	fmt.Println(len(ms), "match")
	// Output: 1 match
}

// ExampleQueryTopology classifies a pattern's query graph (Section 4.3 of
// the paper), which decides whether polynomial planning applies.
func ExampleQueryTopology() {
	p, _ := cep.ParsePattern(`PATTERN AND(A a, B b, C c)
	                          WHERE a.x = b.x AND b.x = c.x WITHIN 1 s`)
	topo, _ := cep.QueryTopology(p, nil)
	fmt.Println(topo)
	// Output: chain
}

// ExampleReadJSONL ingests events from a JSON Lines feed.
func ExampleReadJSONL() {
	reg := cep.NewRegistry(cep.NewSchema("Stock", "price"))
	feed := `{"type":"Stock","ts":1,"attrs":{"price":99.5}}
{"type":"Stock","ts":2,"attrs":{"price":100.25}}`
	events, err := cep.ReadJSONL(strings.NewReader(feed), reg)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(events), events[1].MustAttr("price"))
	// Output: 2 100.25
}

// ExampleSaveStats persists measured statistics for reuse.
func ExampleSaveStats() {
	st := cep.NewStats()
	st.SetRate("Stock", 42)
	var buf bytes.Buffer
	if err := cep.SaveStats(&buf, st); err != nil {
		panic(err)
	}
	loaded, _ := cep.LoadStats(&buf)
	fmt.Println(loaded.Rate("Stock"))
	// Output: 42
}

// ExampleRuntime_Describe shows plan inspection: a rare final event makes
// the optimizer reorder.
func ExampleRuntime_Describe() {
	p, _ := cep.ParsePattern(`PATTERN SEQ(A a, B b) WITHIN 1 s`)
	st := cep.NewStats()
	st.SetRate("A", 100)
	st.SetRate("B", 0.1)
	rt, _ := cep.New(p, st, cep.WithAlgorithm(cep.AlgDPLD))
	fmt.Print(rt.Describe())
	// Output:
	// pattern: SEQ(A a, B b) WITHIN 1000ms
	//   order plan [b a]  (cost 5.10)
}
