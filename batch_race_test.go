package cep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSessionBatchRaceStress hammers the batched intake from concurrent
// producers while a churn goroutine adds and removes queries and an
// aggressive adaptive config forces drift re-optimizations (lane splices)
// mid-stream. Run under -race (CI does), this is the pinning test for the
// SubmitBatch locking discipline: the batch slice is copied once and shared
// read-only across lanes, seq reservation is atomic under the intake lock,
// and splices drain lanes before swapping engines.
//
// Every event carries the same timestamp: any interleaving of producers is
// a valid non-decreasing stream, and since SEQ semantics require strictly
// increasing timestamps inside a match, the expected match set is exactly
// empty regardless of interleaving — which keeps the assertion exact and
// the partial-match state bounded.
func TestSessionBatchRaceStress(t *testing.T) {
	runSessionBatchRaceStress(t, SessionConfig{
		ShareSubplans: true,
		QueueLen:      64,
		Adaptive: &AdaptiveSessionConfig{
			CheckEvery:   64,
			WarmupEvents: 64,
			MinInterval:  64,
			Hysteresis:   1,
			Threshold:    0.01,
		},
	})
}

// TestSessionBatchRaceStressFilterIndex repeats the stress with the ingress
// filter index on: every SubmitBatch now routes through the RCU-published
// index while the churn goroutine's add/remove cycle rebuilds it under the
// intake write lock. The counting query (every A event is a match) turns
// the assertion into exact delivery accounting — a routed event dropped by
// a stale index, or delivered twice across a swap, changes the count.
func TestSessionBatchRaceStressFilterIndex(t *testing.T) {
	runSessionBatchRaceStress(t, SessionConfig{
		ShareSubplans: true,
		FilterIndex:   true,
		QueueLen:      64,
		Adaptive: &AdaptiveSessionConfig{
			CheckEvery:   64,
			WarmupEvents: 64,
			MinInterval:  64,
			Hysteresis:   1,
			Threshold:    0.01,
		},
	})
}

func runSessionBatchRaceStress(t *testing.T, cfg SessionConfig) {
	// Registration-time stats from a skewed synthetic history (tails hot,
	// head pair quiet); the live stream is uniform, so the drift monitor
	// sees a rate inversion and the adaptive loop re-optimizes.
	history := regimeShiftStream(3, map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20},
		nil, 120*Second, 0)
	queries := headPairQueries(t, history, 4)

	s := NewSession(cfg)
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	// The counting lane: a single-position pattern whose filter every A
	// event satisfies, so its match count must equal the exact number of A
	// events submitted — drops and double-deliveries both break equality.
	var counted atomic.Int64
	countP := Seq(Second, E("A", "a")).Where(Cmp(Ref("a", "x"), Ge, Const(0)))
	if err := s.Register(QueryConfig{
		Name: "count-a", Pattern: countP, Stats: Measure(history, countP),
		OnMatch: func(*Match) { counted.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	const nProducers = 4
	const perProducer = 4096
	const batch = 32

	// Event slices are built up-front: the lazily-populated schema cache in
	// driftSchema is not goroutine-safe, and the producers should spend
	// their time in SubmitBatch, not generation.
	streams := make([][]*Event, nProducers)
	wantA := int64(0)
	for pr := range streams {
		streams[pr] = makeConstantTSEvents(pr, perProducer)
		for _, e := range streams[pr] {
			if e.Type == "A" {
				wantA++
			}
		}
	}

	var wg sync.WaitGroup
	for pr := 0; pr < nProducers; pr++ {
		evs := streams[pr]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(evs); i += batch {
				if err := s.SubmitBatch(evs[i : i+batch]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Query churn concurrent with the producers: register a fresh shared
	// query, remove it, repeat — every add/remove re-optimizes the shared
	// component (and, with FilterIndex, rebuilds the ingress index) while
	// batches are in flight.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn-%d", i)
			p := Seq(2*Second, E("A", "a"), E("B", "b")).
				Where(AttrCmp("a", "x", Eq, "b", "x"))
			if err := s.AddQuery(QueryConfig{Name: name, Pattern: p, Stats: Measure(history, p)}); err != nil {
				t.Error(err)
				return
			}
			if err := s.RemoveQuery(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, ms := range s.Results() {
		if name == "count-a" {
			continue
		}
		if len(ms) != 0 {
			t.Fatalf("query %s matched %d times on a constant-timestamp stream", name, len(ms))
		}
	}
	if got := counted.Load(); got != wantA {
		t.Fatalf("counting lane saw %d A events, submitted %d (dropped or double-delivered)", got, wantA)
	}
}

// makeConstantTSEvents builds a uniform A/B/T1/T2 mix where every event
// shares one timestamp, stamped with producer-local serials.
func makeConstantTSEvents(producer, n int) []*Event {
	types := []string{"A", "B", "T1", "T2"}
	evs := make([]*Event, n)
	for i := range evs {
		s := driftSchema(types[(producer+i)%len(types)])
		evs[i] = NewEvent(s, Second, float64(i%13))
	}
	return Stamp(evs)
}
