package cep

import (
	"strings"
	"testing"
)

// TestProfiledLatencyAnchor exercises the Section 6.1 output profiler end
// to end: for a conjunction (whose temporally last event is unknown a
// priori), replaying history reveals that Alert always arrives last, and a
// latency-dominated plan must then process Alert last.
func TestProfiledLatencyAnchor(t *testing.T) {
	p, err := ParsePattern(`PATTERN AND(Login l, Trade t, Alert a)
	                        WHERE l.user = t.user AND t.user = a.user
	                        WITHIN 10 s`)
	if err != nil {
		t.Fatal(err)
	}
	// History in which the Alert is always the temporally last event.
	var history []*Event
	base := Time(0)
	for i := 0; i < 20; i++ {
		u := float64(i)
		history = append(history,
			NewEvent(loginSchema, base+1000, u),
			NewEvent(tradeSchema, base+2000, u, 100),
			NewEvent(alertSchema, base+3000, u),
		)
		base += 20_000
	}
	history = Stamp(history)
	st := Measure(history, p)
	// Make Alert statistically rare so the throughput-only plan would put
	// it first — the profiler must override that for latency.
	st.SetRate("Alert", 0.01)
	st.SetRate("Login", 10)
	st.SetRate("Trade", 10)

	noProfile, err := New(p, st, WithAlgorithm(AlgDPLD), WithLatencyWeight(1e9))
	if err != nil {
		t.Fatal(err)
	}
	// Without a profiler, conjunctions have no anchor: the latency term is
	// disabled and the rare Alert is processed first.
	if !strings.Contains(noProfile.Describe(), "[a ") {
		t.Fatalf("unprofiled plan = %s", noProfile.Describe())
	}

	profiled, err := New(p, st,
		WithAlgorithm(AlgDPLD),
		WithLatencyWeight(1e9),
		WithProfiledLatencyAnchor(history),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(profiled.Describe(), " a]") {
		t.Fatalf("profiled plan should end with the Alert: %s", profiled.Describe())
	}
	// Matching still works.
	if got := len(processAll(t, profiled, Stamp(history))); got != 20 {
		t.Fatalf("profiled runtime found %d matches, want 20", got)
	}
}
