package cep

import (
	"sort"

	"repro/internal/stats"
)

// PartitionedRuntime detects a pattern independently inside each stream
// partition, with a separately generated plan per partition — the
// per-partition planning the paper flags as future work in Section 6.2
// ("otherwise, the evaluation plan is to be generated on a per-partition
// basis"). Matches never span partitions.
//
// Per-partition statistics may be supplied up front; partitions without
// statistics get a plan from the shared defaults the first time an event of
// theirs arrives.
type PartitionedRuntime struct {
	pattern   *Pattern
	defaults  *Stats
	perPart   map[int]*Stats
	opts      []Option
	runtimes  map[int]*Runtime
	matches   int64
	flushOnce bool
}

// NewPartitioned builds a partitioned runtime. defaults supplies statistics
// for partitions absent from perPartition; both may be nil.
func NewPartitioned(p *Pattern, defaults *Stats, perPartition map[int]*Stats, opts ...Option) (*PartitionedRuntime, error) {
	pr := newPartitioned(p, defaults, perPartition, opts)
	// Validate eagerly with the default statistics so that configuration
	// errors surface at construction, not at the first event.
	if _, err := New(p, pr.defaults, opts...); err != nil {
		return nil, err
	}
	return pr, nil
}

// newPartitioned builds the runtime without the eager validation plan. The
// sharded runtime uses it so that a pre-validated configuration is not
// re-planned once per worker.
func newPartitioned(p *Pattern, defaults *Stats, perPartition map[int]*Stats, opts []Option) *PartitionedRuntime {
	if defaults == nil {
		defaults = stats.New()
	}
	return &PartitionedRuntime{
		pattern:  p,
		defaults: defaults,
		perPart:  perPartition,
		opts:     opts,
		runtimes: make(map[int]*Runtime),
	}
}

// runtimeFor returns the partition's runtime, planning it on first contact
// with the partition's own statistics (or the shared defaults).
func (pr *PartitionedRuntime) runtimeFor(partition int) (*Runtime, error) {
	rt, ok := pr.runtimes[partition]
	if ok {
		return rt, nil
	}
	st := pr.defaults
	if s, ok := pr.perPart[partition]; ok {
		st = s
	}
	rt, err := New(pr.pattern, st, pr.opts...)
	if err != nil {
		return nil, err
	}
	pr.runtimes[partition] = rt
	return rt, nil
}

// Process routes the event to its partition's runtime, creating it on first
// contact. A nil event returns ErrNilEvent; after Flush or Close it returns
// ErrClosed.
func (pr *PartitionedRuntime) Process(e *Event) ([]*Match, error) {
	if pr.flushOnce {
		return nil, ErrClosed
	}
	if e == nil {
		return nil, ErrNilEvent
	}
	rt, err := pr.runtimeFor(e.Partition)
	if err != nil {
		return nil, err
	}
	ms, err := rt.Process(e)
	pr.matches += int64(len(ms))
	return ms, err
}

// Flush ends the stream, releasing pending matches from every partition in
// ascending partition-id order, so flushed output is reproducible across
// runs regardless of partition-map iteration order. Flushing twice returns
// ErrClosed.
func (pr *PartitionedRuntime) Flush() ([]*Match, error) {
	if pr.flushOnce {
		return nil, ErrClosed
	}
	pr.flushOnce = true
	ids := make([]int, 0, len(pr.runtimes))
	for id := range pr.runtimes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []*Match
	for _, id := range ids {
		ms, err := pr.runtimes[id].Flush()
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	pr.matches += int64(len(out))
	return out, nil
}

// Close releases the runtime without flushing; it is idempotent.
func (pr *PartitionedRuntime) Close() error {
	pr.flushOnce = true
	for _, rt := range pr.runtimes {
		rt.Close()
	}
	return nil
}

// Partitions returns the partition ids with active runtimes.
func (pr *PartitionedRuntime) Partitions() []int {
	out := make([]int, 0, len(pr.runtimes))
	for p := range pr.runtimes {
		out = append(out, p)
	}
	return out
}

// Matches returns the total matches across partitions.
func (pr *PartitionedRuntime) Matches() int64 { return pr.matches }

// PlanFor describes the plan used by one partition, or "" if that
// partition has not been seen.
func (pr *PartitionedRuntime) PlanFor(partition int) string {
	rt, ok := pr.runtimes[partition]
	if !ok {
		return ""
	}
	return rt.Describe()
}
