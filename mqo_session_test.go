package cep

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/match"
	"repro/internal/workload"
)

// keysOf fingerprints a match list as an unordered set. Shared evaluation
// preserves per-query match sets, not emission interleaving, so the MQO
// equivalence suite compares sets.
func keysOf(ms []*Match) map[string]bool { return match.KeySet(ms) }

func diffKeys(got, want []*Match) (extra, missing []string) { return match.Diff(got, want) }

// shareQueries builds an overlapping query set over the stock registry:
// four queries sharing the (S000 ⋈ S001) prefix with distinct tails, a
// duplicated identical query, a negation query (ineligible, private
// fallback), a disjunction (private fallback) and one skip-till-next query
// (ineligible by strategy, private fallback).
func shareQueries(t testing.TB, stocks *workload.Stocks, events []*Event) []QueryConfig {
	t.Helper()
	reg := stocks.Registry
	var out []QueryConfig
	add := func(name, src, alg string, strat Strategy) {
		p, err := ParsePatternWith(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, QueryConfig{
			Name:      name,
			Pattern:   p,
			Stats:     Measure(events, p),
			Algorithm: alg,
			Strategy:  strat,
		})
	}
	for i, tail := range []string{"S002", "S003", "S004", "S005"} {
		add(fmt.Sprintf("prefix-%d", i),
			fmt.Sprintf(`PATTERN SEQ(S000 a, S001 b, %s c)
			             WHERE a.difference < b.difference WITHIN 2 s`, tail),
			"", SkipTillAnyMatch)
	}
	// Two identical queries under different names: guaranteed full sharing.
	add("twin-1", `PATTERN SEQ(S000 a, S001 b) WHERE a.bucket = b.bucket WITHIN 2 s`, AlgZStream, 0)
	add("twin-2", `PATTERN SEQ(S000 a, S001 b) WHERE a.bucket = b.bucket WITHIN 2 s`, AlgZStream, 0)
	// Ineligible shapes ride along on private lanes.
	add("negated", `PATTERN SEQ(S002 a, NOT(S001 n), S003 b) WITHIN 2 s`, AlgGreedy, 0)
	add("either", `PATTERN OR(SEQ(S004 a, S005 b), SEQ(S005 x, S004 y)) WITHIN 1 s`, AlgGreedy, 0)
	add("next-match", `PATTERN SEQ(S003 a, S004 b) WITHIN 2 s`, AlgZStream, SkipTillNextMatch)
	return out
}

// TestShareSubplansEquivalenceStocks is the MQO equivalence property on the
// stock workload: a ShareSubplans session must produce, per query, exactly
// the match set of an independent single-query runtime — across shared DAG
// members, restructured plans, private fallbacks, and both skip-till
// strategies.
func TestShareSubplansEquivalenceStocks(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 4000, Seed: 11, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	queries := shareQueries(t, stocks, events)

	want := make(map[string][]*Match, len(queries))
	total := 0
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := rt.ProcessAll(workload.ResetStream(events))
		if err != nil {
			t.Fatal(err)
		}
		want[qc.Name] = ms
		total += len(ms)
	}
	if total == 0 {
		t.Fatal("workload produced no matches; equivalence test is vacuous")
	}

	s := NewSession(SessionConfig{QueueLen: 64, ShareSubplans: true})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background(), NewStream(workload.ResetStream(events))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	report := s.ShareReport()
	if report == nil {
		t.Fatal("ShareSubplans session produced no ShareReport")
	}
	if report.Shared < 2 {
		t.Fatalf("optimizer shared %d queries, want at least the identical twins; report %+v",
			report.Shared, report)
	}
	if report.SharedCost >= report.UnsharedCost {
		t.Fatalf("shared objective %.2f not below unshared %.2f",
			report.SharedCost, report.UnsharedCost)
	}
	for _, qc := range queries {
		got := s.Matches(qc.Name)
		extra, missing := diffKeys(got, want[qc.Name])
		if len(extra) > 0 || len(missing) > 0 {
			t.Errorf("query %q: shared session diverges from independent runtime (%d vs %d matches; %d extra, %d missing)",
				qc.Name, len(got), len(want[qc.Name]), len(extra), len(missing))
		}
	}
}

// TestShareSubplansEquivalenceTraffic repeats the equivalence property on
// the Figure 1 traffic workload, whose queries share the (A ⋈ B) camera
// prefix.
func TestShareSubplansEquivalenceTraffic(t *testing.T) {
	frames, reg := trafficWorkload(t)
	sources := map[string]string{
		"crossing": `PATTERN SEQ(A a, B b, C c, D d) WHERE a.vehicleID = b.vehicleID AND
		             b.vehicleID = c.vehicleID AND c.vehicleID = d.vehicleID WITHIN 30 s`,
		"ab-pair": `PATTERN SEQ(A a, B b) WHERE a.vehicleID = b.vehicleID WITHIN 30 s`,
		"abc":     `PATTERN SEQ(A a, B b, C c) WHERE a.vehicleID = b.vehicleID AND b.vehicleID = c.vehicleID WITHIN 30 s`,
		"mid":     `PATTERN AND(B b, C c) WHERE b.vehicleID = c.vehicleID WITHIN 1 s`,
	}
	var queries []QueryConfig
	for _, name := range []string{"crossing", "ab-pair", "abc", "mid"} {
		p, err := ParsePatternWith(sources[name], reg)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, QueryConfig{Name: name, Pattern: p, Stats: Measure(frames, p)})
	}
	want := make(map[string][]*Match, len(queries))
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := rt.ProcessAll(frames)
		if err != nil {
			t.Fatal(err)
		}
		want[qc.Name] = ms
	}
	s := NewSession(SessionConfig{ShareSubplans: true})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background(), NewStream(frames)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, ref := range want {
		extra, missing := diffKeys(s.Matches(name), ref)
		if len(extra) > 0 || len(missing) > 0 {
			t.Errorf("query %q: shared session diverges from independent runtime (%d extra, %d missing)",
				name, len(extra), len(missing))
		}
	}
}

// TestShareSubplansConcurrentProducersRace streams a ShareSubplans session
// from several producer goroutines (externally ordered through a mutex, as
// the Submit contract requires) with a concurrent mid-stream Drain, under
// the race detector, and checks the total match count against sequential
// references.
func TestShareSubplansConcurrentProducersRace(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 3000, Seed: 29, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	queries := shareQueries(t, stocks, events)

	wantTotal := 0
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := rt.ProcessAll(workload.ResetStream(events))
		if err != nil {
			t.Fatal(err)
		}
		wantTotal += len(ms)
	}

	var delivered atomic.Int64
	s := NewSession(SessionConfig{
		QueueLen:      32,
		ShareSubplans: true,
		OnMatch:       func(string, *Match) { delivered.Add(1) },
	})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	feed := workload.ResetStream(events)
	var feedMu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// External ordering: the lock spans pick-and-submit, so the
				// timestamp order of Submit calls matches the stream.
				feedMu.Lock()
				if next >= len(feed) {
					feedMu.Unlock()
					return
				}
				e := feed[next]
				next++
				if err := s.Submit(e); err != nil {
					feedMu.Unlock()
					t.Errorf("Submit: %v", err)
					return
				}
				feedMu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Drain(); err != nil {
			t.Errorf("Drain: %v", err)
		}
	}()
	wg.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != int64(wantTotal) {
		t.Fatalf("concurrent producers delivered %d matches, want %d", got, wantTotal)
	}
}

// TestQueryConfigQueryField covers the string-first registration path and
// its error paths.
func TestQueryConfigQueryField(t *testing.T) {
	rt, err := NewFromConfig(QueryConfig{
		Name:  "q",
		Query: `PATTERN SEQ(Login l, Alert a) WHERE l.user = a.user WITHIN 10 s`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	// Source stays accepted as the deprecated alias.
	if _, err := NewFromConfig(QueryConfig{
		Name:   "q",
		Source: `PATTERN SEQ(Login l) WITHIN 1 s`,
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		qc   QueryConfig
		want string
	}{
		{"both Query and Source", QueryConfig{
			Name:   "q",
			Query:  `PATTERN SEQ(Login l) WITHIN 1 s`,
			Source: `PATTERN SEQ(Login l) WITHIN 1 s`,
		}, "both Query and Source"},
		{"both Pattern and Query", QueryConfig{
			Name:    "q",
			Pattern: demoPattern(t),
			Query:   `PATTERN SEQ(Login l) WITHIN 1 s`,
		}, "both Pattern and Query"},
		{"neither", QueryConfig{Name: "q"}, "neither Pattern nor Query"},
		{"malformed", QueryConfig{Name: "q", Query: `PATTERN WAT`}, ""},
		{"missing window", QueryConfig{Name: "q", Query: `PATTERN SEQ(Login l)`}, ""},
		{"unknown type", QueryConfig{
			Name:     "q",
			Query:    `PATTERN SEQ(Nope n) WITHIN 1 s`,
			Registry: NewRegistry(loginSchema),
		}, ""},
	}
	for _, tc := range cases {
		_, err := NewFromConfig(tc.qc)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		s := NewSession(SessionConfig{})
		if rerr := s.Register(tc.qc); rerr == nil {
			t.Errorf("%s: Session.Register accepted", tc.name)
		}
	}
}
