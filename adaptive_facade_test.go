package cep

import "testing"

func TestAdaptiveRuntimeBasics(t *testing.T) {
	p := demoPattern(t)
	// CheckEvery is larger than the stream so no mid-match plan swap occurs
	// (swaps discard in-flight partial matches by design).
	rt, err := NewAdaptive(p, nil, AdaptiveConfig{Algorithm: AlgDPLD, CheckEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ev := range demoEvents() {
		ms, err := rt.Process(ev)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ms)
	}
	fl, err := rt.Flush()
	if err != nil {
		t.Fatal(err)
	}
	total += len(fl)
	if total != 1 || rt.Matches() != 1 {
		t.Fatalf("matches = %d / %d", total, rt.Matches())
	}
	if rt.Replans() < 0 {
		t.Fatal("negative replans")
	}
}

// TestAdaptiveConfigDefaults pins the documented zero-value defaults of
// AdaptiveConfig to the values the internal controller actually applies:
// "check every 512 events, 25% improvement threshold, warm-up of one check
// interval". If this test fails, fix the AdaptiveConfig doc comment or the
// internal defaults — whichever drifted.
func TestAdaptiveConfigDefaults(t *testing.T) {
	rt, err := NewAdaptive(demoPattern(t), nil, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.ctrl.Config()
	if cfg.CheckEvery != 512 {
		t.Fatalf("default CheckEvery = %d, doc promises 512", cfg.CheckEvery)
	}
	if cfg.Threshold != 0.25 {
		t.Fatalf("default Threshold = %v, doc promises 0.25", cfg.Threshold)
	}
	if cfg.WarmupEvents != 512 {
		t.Fatalf("default WarmupEvents = %d, doc promises one check interval (512)", cfg.WarmupEvents)
	}
	if cfg.Planner == nil || cfg.Planner.Algorithm != AlgGreedy {
		t.Fatalf("default planner = %+v, doc promises AlgGreedy", cfg.Planner)
	}
}

func TestExtensionAlgorithmsViaFacade(t *testing.T) {
	p := demoPattern(t)
	st := Measure(demoEvents(), p)
	for _, alg := range []string{AlgKBZ, AlgSimAnneal, AlgAuto} {
		rt, err := New(p, st, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got := len(processAll(t, rt, demoEvents())); got != 1 {
			t.Fatalf("%s: %d matches", alg, got)
		}
	}
}

func TestQueryTopology(t *testing.T) {
	// Login—Trade—Alert equality chain: a chain graph.
	p := demoPattern(t)
	topo, err := QueryTopology(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "chain" {
		t.Fatalf("topology = %q, want chain", topo)
	}
	// No predicates at all: disconnected.
	q := And(10*Second, E("Login", "l"), E("Trade", "t"), E("Alert", "a"))
	topo, err = QueryTopology(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "disconnected" {
		t.Fatalf("topology = %q, want disconnected", topo)
	}
	// Star: one hub with predicates to three others (a three-vertex "star"
	// is also a path and classifies as a chain).
	s := And(10*Second,
		E("Login", "l"), E("Trade", "t"), E("Alert", "a"), E("Trade", "t2"),
	).Where(
		AttrCmp("l", "user", Eq, "t", "user"),
		AttrCmp("l", "user", Eq, "a", "user"),
		AttrCmp("l", "user", Eq, "t2", "user"),
	)
	topo, err = QueryTopology(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "star" {
		t.Fatalf("topology = %q, want star", topo)
	}
}
