package cep

import "testing"

func TestAdaptiveRuntimeBasics(t *testing.T) {
	p := demoPattern(t)
	// CheckEvery is larger than the stream so no mid-match plan swap occurs
	// (swaps discard in-flight partial matches by design).
	rt, err := NewAdaptive(p, nil, AdaptiveConfig{Algorithm: AlgDPLD, CheckEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ev := range demoEvents() {
		ms, err := rt.Process(ev)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ms)
	}
	fl, err := rt.Flush()
	if err != nil {
		t.Fatal(err)
	}
	total += len(fl)
	if total != 1 || rt.Matches() != 1 {
		t.Fatalf("matches = %d / %d", total, rt.Matches())
	}
	if rt.Replans() < 0 {
		t.Fatal("negative replans")
	}
}

func TestExtensionAlgorithmsViaFacade(t *testing.T) {
	p := demoPattern(t)
	st := Measure(demoEvents(), p)
	for _, alg := range []string{AlgKBZ, AlgSimAnneal, AlgAuto} {
		rt, err := New(p, st, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got := len(processAll(t, rt, demoEvents())); got != 1 {
			t.Fatalf("%s: %d matches", alg, got)
		}
	}
}

func TestQueryTopology(t *testing.T) {
	// Login—Trade—Alert equality chain: a chain graph.
	p := demoPattern(t)
	topo, err := QueryTopology(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "chain" {
		t.Fatalf("topology = %q, want chain", topo)
	}
	// No predicates at all: disconnected.
	q := And(10*Second, E("Login", "l"), E("Trade", "t"), E("Alert", "a"))
	topo, err = QueryTopology(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "disconnected" {
		t.Fatalf("topology = %q, want disconnected", topo)
	}
	// Star: one hub with predicates to three others (a three-vertex "star"
	// is also a path and classifies as a chain).
	s := And(10*Second,
		E("Login", "l"), E("Trade", "t"), E("Alert", "a"), E("Trade", "t2"),
	).Where(
		AttrCmp("l", "user", Eq, "t", "user"),
		AttrCmp("l", "user", Eq, "a", "user"),
		AttrCmp("l", "user", Eq, "t2", "user"),
	)
	topo, err = QueryTopology(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo != "star" {
		t.Fatalf("topology = %q, want star", topo)
	}
}
