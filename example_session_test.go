package cep_test

// Runnable examples for the Session front door and the config-first
// QueryConfig construction.

import (
	"context"
	"fmt"

	cep "repro"
)

// ExampleSession serves two named queries over one feed: events fan out to
// each query's worker over a bounded queue, and Flush returns the
// accumulated matches (per-query, in registration order) after draining
// and flushing every query.
func ExampleSession() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	s := cep.NewSession(cep.SessionConfig{QueueLen: 64})
	if err := s.Register(cep.QueryConfig{
		Name: "same-user",
		Source: `PATTERN SEQ(Login l, Alert a)
		         WHERE l.user = a.user WITHIN 5 s`,
	}); err != nil {
		panic(err)
	}
	if err := s.Register(cep.QueryConfig{
		Name:   "any-pair",
		Source: `PATTERN AND(Login l, Alert a) WITHIN 5 s`,
	}); err != nil {
		panic(err)
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 3000, 9), // wrong user: only the AND matches it
	})
	if err := s.Run(context.Background(), cep.NewStream(events)); err != nil {
		panic(err)
	}
	if _, err := s.Flush(); err != nil { // end of stream: flush pendings, join workers
		panic(err)
	}
	fmt.Println("same-user:", len(s.Matches("same-user")), "any-pair:", len(s.Matches("any-pair")))
	// Output: same-user: 1 any-pair: 2
}

// ExampleQueryConfig builds a single-query Runtime declaratively — the
// config-first equivalent of cep.New with functional options.
func ExampleQueryConfig() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	rt, err := cep.NewFromConfig(cep.QueryConfig{
		Name: "same-user",
		Source: `PATTERN SEQ(Login l, Alert a)
		         WHERE l.user = a.user WITHIN 5 s`,
		Algorithm: cep.AlgDPLD,
		Strategy:  cep.SkipTillAnyMatch,
	})
	if err != nil {
		panic(err)
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(alert, 2000, 7),
	})
	ms, err := rt.ProcessAll(events)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ms), "match")
	// Output: 1 match
}

// ExampleSession_IndexReport enables the ingress filter index and reads
// its per-type statistics back: each event is classified once at Submit —
// exact type dispatch, then constant-predicate tables — and routed only to
// the queries it can advance, so the report's hit rates are the post-index
// fan-out the broadcast path would have paid in full.
func ExampleSession_IndexReport() {
	trade := cep.NewSchema("Trade", "sym")
	fill := cep.NewSchema("Fill", "sym")
	s := cep.NewSession(cep.SessionConfig{FilterIndex: true})
	for i, src := range []string{
		`PATTERN SEQ(Trade t, Fill f) WHERE t.sym = 1 WITHIN 5 s`,
		`PATTERN SEQ(Trade t, Fill f) WHERE t.sym = 2 WITHIN 5 s`,
	} {
		if err := s.Register(cep.QueryConfig{Name: fmt.Sprintf("q%d", i), Query: src}); err != nil {
			panic(err)
		}
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(trade, 1000, 1), // routes to q0 only
		cep.NewEvent(trade, 2000, 2), // routes to q1 only
		cep.NewEvent(trade, 3000, 9), // routes nowhere
		cep.NewEvent(fill, 4000, 1),  // Fill positions are unfiltered: both queries
	})
	for _, ev := range events {
		if err := s.Submit(ev); err != nil {
			panic(err)
		}
	}
	rep := s.IndexReport()
	for _, tr := range rep.Types {
		fmt.Printf("%s: subs=%d constraints=%d events=%d hits=%d hitRate=%.2f\n",
			tr.Type, tr.Subscriptions, tr.IndexedConstraints, tr.Events, tr.Hits, tr.HitRate)
	}
	if err := s.Close(); err != nil {
		panic(err)
	}
	// Output:
	// Fill: subs=2 constraints=0 events=1 hits=2 hitRate=1.00
	// Trade: subs=2 constraints=2 events=3 hits=2 hitRate=0.33
}

// ExampleSession_Metrics reads the always-on telemetry back: hot-path
// counters (events submitted, routed, dropped; matches emitted), the
// sampled detection-latency histogram, per-lane queue gauges and the
// journal of control-plane transitions — one coherent snapshot, safe to
// take from any goroutine while the stream is live.
func ExampleSession_Metrics() {
	trade := cep.NewSchema("Trade", "sym")
	fill := cep.NewSchema("Fill", "sym")
	s := cep.NewSession(cep.SessionConfig{
		FilterIndex: true,
		Telemetry:   &cep.TelemetryConfig{LatencySampleEvery: 1},
	})
	if err := s.Register(cep.QueryConfig{
		Name:  "fills",
		Query: `PATTERN SEQ(Trade t, Fill f) WITHIN 5 s`,
	}); err != nil {
		panic(err)
	}
	if err := s.Start(); err != nil {
		panic(err)
	}
	events := cep.Stamp([]*cep.Event{
		cep.NewEvent(trade, 1000, 1),
		cep.NewEvent(fill, 2000, 1),
	})
	if err := s.SubmitBatch(events); err != nil {
		panic(err)
	}
	if err := s.Drain(); err != nil {
		panic(err)
	}
	m := s.Metrics()
	fmt.Println("queries:", m.Queries)
	fmt.Println("submitted:", m.EventsSubmitted, "routed:", m.EventsRouted, "dropped:", m.EventsDropped)
	fmt.Println("matches:", m.MatchesEmitted, "latency samples:", m.Latency.Count)
	fmt.Println("journal[0]:", m.Journal[0].Kind)
	if err := s.Close(); err != nil {
		panic(err)
	}
	// Output:
	// queries: 1
	// submitted: 2 routed: 2 dropped: 0
	// matches: 1 latency samples: 1
	// journal[0]: index_rebuild
}

// ExampleSession_RegisterDetector composes the Session with a sharded
// multi-core runtime: the query is itself a Detector, so one session can
// mix plain, adaptive and sharded queries under one lifecycle.
func ExampleSession_RegisterDetector() {
	login := cep.NewSchema("Login", "user")
	alert := cep.NewSchema("Alert", "user")
	p, _ := cep.ParsePattern(`PATTERN SEQ(Login l, Alert a) WITHIN 5 s`)
	sharded, err := cep.NewSharded(p, nil, nil, cep.ShardConfig{Workers: 4})
	if err != nil {
		panic(err)
	}
	s := cep.NewSession(cep.SessionConfig{})
	if err := s.RegisterDetector("per-partition", sharded, nil); err != nil {
		panic(err)
	}
	events := []*cep.Event{
		cep.NewEvent(login, 1000, 7),
		cep.NewEvent(login, 1500, 9),
		cep.NewEvent(alert, 2000, 7),
		cep.NewEvent(alert, 2500, 9),
	}
	for i, ev := range events {
		ev.Partition = i % 2 // partition-local detection inside the shards
	}
	if err := s.Run(context.Background(), cep.NewStream(cep.Stamp(events))); err != nil {
		panic(err)
	}
	ms, err := s.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ms), "matches")
	// Output: 2 matches
}
