package cep

// Session.Explain — the decision-explain surface of the observability
// layer: for one registered query, why it shares an evaluation lane (or
// doesn't), under which canonical sub-join keys, what the cost model
// measured for and against sharing, and how (or why not) its component is
// key-partitioned. Everything reported here re-states decisions the
// optimizer already took; Explain never re-plans.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mqo"
)

// QueryExplain narrates the placement decisions behind one registered
// query. Render it with String, or consume the fields directly.
type QueryExplain struct {
	// Query is the query name; Since its registration watermark (stream
	// sequence of the first event it could observe).
	Query string `json:"query"`
	Since uint64 `json:"since"`
	// Kind is the lane placement: "shared" (multi-member DAG lane),
	// "singleton-dag" (own DAG lane, adoptable by future sharing),
	// "private" (own detector, outside the sharing fragment) or "pending"
	// (session not started; no lane exists yet).
	Kind string `json:"kind"`
	// Detector marks an opaque RegisterDetector query.
	Detector bool `json:"detector,omitempty"`
	// Eligible reports whether the query may participate in subplan
	// sharing; when false, Reason says why (sharing disabled, opaque
	// detector, multiple disjuncts, non-skip-till-any-match strategy, or a
	// Kleene closure). An eligible query on a singleton lane gets the
	// reason no sharing partner was found.
	Eligible bool   `json:"eligible"`
	Reason   string `json:"reason,omitempty"`
	// ShareKeys are the canonical sub-join keys the query could share
	// under — what AddQuery/RemoveQuery consult to find overlap.
	ShareKeys []string `json:"share_keys,omitempty"`

	// DAG-lane placement (Kind "shared"/"singleton-dag"): the sharing
	// component id and its re-optimization generation, the member set, and
	// the optimizer's decision snapshot — summed private-optimal cost
	// (UnsharedCost) vs the chosen shared plan's cost (SharedCost), plan
	// node counts, and how many members run restructured (non-private-
	// optimal) trees for the sharing win.
	Members      []string `json:"members,omitempty"`
	Component    int      `json:"component"`
	Generation   int      `json:"generation"`
	Nodes        int      `json:"nodes,omitempty"`
	SharedNodes  int      `json:"shared_nodes,omitempty"`
	Restructured int      `json:"restructured,omitempty"`
	UnsharedCost float64  `json:"unshared_cost,omitempty"`
	SharedCost   float64  `json:"shared_cost,omitempty"`

	// Key partitioning: Partitions/PartitionAttr when the component is
	// hash-partitioned; otherwise PartitionReason says why not (derivation
	// narrated by mqo.ExplainPartitionKey, or partitioning disabled).
	Partitions      int    `json:"partitions,omitempty"`
	PartitionAttr   string `json:"partition_attr,omitempty"`
	PartitionReason string `json:"partition_reason,omitempty"`
}

// String renders the explanation as a short human-readable block.
func (ex *QueryExplain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %q [%s]\n", ex.Query, ex.Kind)
	fmt.Fprintf(&b, "  eligible: %t", ex.Eligible)
	if ex.Reason != "" {
		fmt.Fprintf(&b, " — %s", ex.Reason)
	}
	b.WriteByte('\n')
	if len(ex.ShareKeys) > 0 {
		fmt.Fprintf(&b, "  canonical keys: %s\n", strings.Join(ex.ShareKeys, ", "))
	}
	if ex.Kind == "shared" || ex.Kind == "singleton-dag" {
		fmt.Fprintf(&b, "  component %d (generation %d), members: %s\n",
			ex.Component, ex.Generation, strings.Join(ex.Members, ", "))
		fmt.Fprintf(&b, "  cost: private=%.4g shared=%.4g (nodes=%d shared=%d restructured=%d)\n",
			ex.UnsharedCost, ex.SharedCost, ex.Nodes, ex.SharedNodes, ex.Restructured)
	}
	switch {
	case ex.Partitions > 1:
		fmt.Fprintf(&b, "  partitions: %d on attribute %q\n", ex.Partitions, ex.PartitionAttr)
	case ex.PartitionReason != "":
		fmt.Fprintf(&b, "  partitions: none — %s\n", ex.PartitionReason)
	}
	return b.String()
}

// Explain reports why the named query shares an evaluation lane or stays
// private: its sharing eligibility (with the disqualifying condition when
// ineligible), the canonical keys it could share under, the cost terms the
// optimizer weighed, and the component's partition-key derivation (or the
// reason none was found). Safe to call concurrently with the feed and with
// churn; it takes the session lock briefly and never re-plans.
func (s *Session) Explain(query string) (*QueryExplain, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.byName[query]
	if !ok {
		return nil, fmt.Errorf("cep: explain: unknown query %q", query)
	}
	ex := &QueryExplain{Query: q.name, Since: q.since, Component: -1}
	ex.ShareKeys = append([]string(nil), q.shareKeys...)

	// Eligibility, with the first disqualifying condition narrated. The
	// conditions mirror mqo.Eligible exactly.
	switch {
	case q.rt == nil:
		ex.Detector = true
		ex.Reason = "opaque detector (RegisterDetector); no plan to share"
	case !s.cfg.ShareSubplans:
		ex.Reason = "subplan sharing disabled (SessionConfig.ShareSubplans off)"
	case len(q.rt.plan.Simple) != 1:
		ex.Reason = fmt.Sprintf("pattern compiles to %d disjuncts; sharing requires exactly one",
			len(q.rt.plan.Simple))
	case q.qc != nil && q.qc.Strategy != SkipTillAnyMatch:
		ex.Reason = fmt.Sprintf("event selection strategy %v is not skip-till-any-match", q.qc.Strategy)
	case hasKleene(q):
		ex.Reason = "pattern contains a Kleene closure"
	default:
		ex.Eligible = true
	}

	if !s.started {
		ex.Kind = "pending"
		return ex, nil
	}
	l := q.lane
	if l == nil || l.eng == nil {
		ex.Kind = "private"
		return ex, nil
	}

	ex.Kind = "singleton-dag"
	if len(l.info.members) > 1 {
		ex.Kind = "shared"
	} else if ex.Eligible {
		ex.Reason = "no profitable sharing partner found by the cost model"
	}
	ex.Members = append([]string(nil), l.info.members...)
	sort.Strings(ex.Members)
	ex.Component, ex.Generation = l.comp, l.gen
	ex.Nodes, ex.SharedNodes = l.info.nodes, l.info.sharedNodes
	ex.Restructured = l.info.restructured
	ex.UnsharedCost, ex.SharedCost = l.info.unshared, l.info.shared

	switch {
	case l.parts > 1:
		ex.Partitions, ex.PartitionAttr = l.parts, l.partAttr
	case s.cfg.PartitionWorkers <= 1:
		ex.PartitionReason = "partitioning disabled (SessionConfig.PartitionWorkers <= 1)"
	default:
		// Re-derive the key the optimizer looked for and narrate why none
		// qualified for this component's member set.
		var members []mqo.Query
		for _, m := range l.members {
			members = append(members, mqoQuery(m))
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		_, ex.PartitionReason = mqo.ExplainPartitionKey(members)
	}
	return ex, nil
}

// hasKleene reports whether the query's (single-disjunct) compiled pattern
// contains a Kleene-closure position.
func hasKleene(q *sessionQuery) bool {
	for _, k := range q.rt.plan.Simple[0].Compiled.Kleene {
		if k {
			return true
		}
	}
	return false
}
